package service

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bankaware/internal/atomicio"
	"bankaware/internal/ledger"
	"bankaware/internal/metrics"
)

// ErrCorrupt reports a stored artifact (report, shard partial) whose bytes
// no longer match their recorded content hash — bit-rot, truncation or
// tampering. The read path quarantines the file before returning it, and
// the HTTP layer maps the error to 503 + Retry-After (the job self-heals
// by re-running) rather than serving poison or a generic 500.
var ErrCorrupt = errors.New("service: stored artifact corrupt")

// Job states. A job is terminal in StateDone, StateFailed or StateCanceled;
// StateQueued and StateRunning survive restarts as "re-enqueue me".
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobRecord is the durable face of one job: the spec as submitted, the
// current state, and coarse lifecycle timestamps. Every state change is
// persisted before it is announced (the intake WAL for freshly queued
// records, an atomic per-job file for everything after), so a crashed or
// drained daemon restarts into a consistent picture: terminal jobs serve
// their stored reports, queued and running (i.e. interrupted) jobs
// re-enqueue.
type JobRecord struct {
	ID   string  `json:"id"`
	Seq  int     `json:"seq"`
	Spec JobSpec `json:"spec"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Error carries the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Attempts counts how many times the job entered StateRunning (a
	// drain-interrupted job that resumes counts twice).
	Attempts int `json:"attempts,omitempty"`

	// SpecHash is the canonical content hash of the spec (SpecHash): the
	// key of the content-addressed result cache and of spec-hash dedup.
	// Recomputed from the spec on load, so old stores pick it up.
	SpecHash string `json:"specHash,omitempty"`
	// IdempotencyKey is the client-supplied Idempotency-Key the job was
	// submitted under, when there was one; it overrides spec-hash dedup.
	IdempotencyKey string `json:"idempotencyKey,omitempty"`
	// ReportHash is the SHA-256 of the stored report bytes for StateDone
	// jobs — the source of the report endpoint's ETag.
	ReportHash string `json:"reportHash,omitempty"`

	SubmittedAt time.Time `json:"submittedAt"`
	StartedAt   time.Time `json:"startedAt"`
	FinishedAt  time.Time `json:"finishedAt"`
}

// Terminal reports whether the record's state is final.
func (r *JobRecord) Terminal() bool {
	return r.State == StateDone || r.State == StateFailed || r.State == StateCanceled
}

// dedupable reports whether the record may serve as a dedup/cache target: a
// failed or canceled job must not absorb a resubmission of the same spec.
func (r *JobRecord) dedupable() bool {
	return r.State == StateQueued || r.State == StateRunning || r.State == StateDone
}

// intakeWALName is the group-commit write-ahead log of freshly accepted
// jobs, relative to the store root.
const intakeWALName = "intake.wal"

// walCompactBytes triggers an in-flight WAL compaction once the log grows
// past it. Entries for jobs that have since been materialised as per-job
// files are dropped; it is a variable only so tests can shrink it.
//
// Compaction cannot shrink the WAL below its live set (records not yet
// materialised), so after each compaction the next trigger is deferred
// until the log doubles from its compacted size — without that, a deep
// backlog of queued-only jobs would rewrite the whole log on every batch
// past the threshold, turning O(1) appends into O(n) rewrites.
var walCompactBytes int64 = 4 << 20

// Store is the daemon's durable result store: one JSON record per job under
// jobs/, the finished run report under reports/, the Monte Carlo checkpoint
// journal under journals/, and the group-commit intake WAL (intake.wal) of
// freshly accepted jobs. Per-job record writes go through
// internal/atomicio; intake writes are appended in batches with a single
// fsync per batch (see batcher.go). A job record lives in exactly one of
// two durable homes at a time — the WAL until its first state transition,
// its per-job file afterwards — and recovery takes the per-job file as the
// newer truth when both exist.
type Store struct {
	dir string
	// led is the tamper-evident run ledger (ledger.log): every job
	// transition and stored report hash appends an entry, and its Merkle
	// root is the integrity commitment /healthz exposes.
	led *ledger.Ledger

	mu    sync.Mutex
	jobs  map[string]JobRecord
	order []orderRef // ascending Seq; backs pagination
	// dedup maps "spec:<hash>" and "idem:<key>" to the job ID that serves
	// duplicates of that submission (the content-addressed result cache
	// once the job is done). Failed and canceled jobs are evicted so a
	// resubmission re-executes.
	dedup        map[string]string
	materialized map[string]bool   // a jobs/<id>.json file exists
	etags        map[string]string // memoized report ETags, by job ID
	seq          int

	wal          *os.File
	walBytes     int64
	walCompactAt int64 // next compaction threshold (see walCompactBytes)
	syncs        int
}

// orderRef is one entry of the seq-ordered job index.
type orderRef struct {
	seq int
	id  string
}

// OpenStore opens (or initialises) the store rooted at dir: it loads every
// per-job record, replays the intake WAL on top (ignoring a torn tail — an
// entry without its final newline was never acked), and compacts the WAL
// down to the entries that still lack per-job files.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"jobs", "reports", "journals"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("service: initialising store: %w", err)
		}
	}
	st := &Store{
		dir:          dir,
		jobs:         make(map[string]JobRecord),
		dedup:        make(map[string]string),
		materialized: make(map[string]bool),
		etags:        make(map[string]string),
	}
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("service: reading store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "jobs", e.Name()))
		if err != nil {
			return nil, fmt.Errorf("service: reading job record %s: %w", e.Name(), err)
		}
		var rec JobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("service: decoding job record %s: %w", e.Name(), err)
		}
		if err := rec.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("service: job record %s: %w", e.Name(), err)
		}
		st.jobs[rec.ID] = rec
		st.materialized[rec.ID] = true
	}
	if err := st.replayWAL(); err != nil {
		return nil, err
	}
	for id, rec := range st.jobs {
		// The hash is canonical, not archival: recompute so records written
		// before content addressing (or under an older hash version) index
		// correctly.
		rec.SpecHash = SpecHash(rec.Spec)
		st.jobs[id] = rec
		if rec.Seq > st.seq {
			st.seq = rec.Seq
		}
		st.order = append(st.order, orderRef{seq: rec.Seq, id: id})
	}
	sort.Slice(st.order, func(i, j int) bool { return st.order[i].seq < st.order[j].seq })
	for _, ref := range st.order {
		st.indexLocked(st.jobs[ref.id])
	}
	if err := st.compactWALLocked(); err != nil {
		return nil, err
	}
	if err := st.openLedger(); err != nil {
		return nil, err
	}
	return st, nil
}

// ledgerPath returns where the run ledger lives.
func (s *Store) ledgerPath() string { return filepath.Join(s.dir, "ledger.log") }

// openLedger opens the store's run ledger, handling the two degraded
// cases: a corrupt ledger is quarantined (renamed, never deleted) and
// rebuilt, and an empty ledger over a non-empty store (a pre-ledger store,
// or the rebuild after a quarantine) is bootstrapped from the stored
// records — the root is reproducible from the store.
func (s *Store) openLedger() error {
	led, err := ledger.Open(s.ledgerPath())
	if errors.Is(err, ledger.ErrCorrupt) {
		quarantined := s.ledgerPath() + ".quarantine"
		if rerr := os.Rename(s.ledgerPath(), quarantined); rerr != nil {
			return fmt.Errorf("service: quarantining corrupt ledger: %v (detected: %w)", rerr, err)
		}
		led, err = ledger.Open(s.ledgerPath())
	}
	if err != nil {
		return fmt.Errorf("service: opening run ledger: %w", err)
	}
	s.led = led
	if led.Len() > 0 || len(s.order) == 0 {
		return nil
	}
	// Rebuild: one entry per stored job at its current state, plus the
	// report hash of every finished job (hashing the stored bytes, so a
	// rebuilt root vouches for what is actually on disk).
	var recs []ledger.Record
	for _, ref := range s.order {
		rec := s.jobs[ref.id]
		recs = append(recs, ledger.Record{
			Type: ledger.TypeJob, Job: rec.ID, Data: rec.State, Hash: rec.SpecHash,
		})
		if rec.State != StateDone {
			continue
		}
		data, err := os.ReadFile(s.ReportPath(rec.ID))
		if err != nil {
			continue // scrub will flag the missing report
		}
		sum := sha256.Sum256(data)
		recs = append(recs, ledger.Record{
			Type: ledger.TypeReport, Job: rec.ID, Hash: hex.EncodeToString(sum[:]),
		})
	}
	if _, err := led.AppendBatch(recs, true); err != nil {
		return fmt.Errorf("service: rebuilding run ledger: %w", err)
	}
	return nil
}

// Ledger exposes the store's run ledger (proof endpoint, health root,
// scrub cross-checks).
func (s *Store) Ledger() *ledger.Ledger { return s.led }

// replayWAL folds the intake WAL into the in-memory map. A WAL entry is
// authoritative only while its job has no per-job file: the first Put
// (running, canceled, re-queued after drain, ...) moves the truth there.
func (s *Store) replayWAL() error {
	f, err := os.Open(s.walPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("service: opening intake WAL: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxSpecBytes*2)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail from a crash mid-append: the batch was never
			// synced, so none of its submissions were acked. Stop replaying
			// — everything after a torn line is the same unacked batch.
			return nil
		}
		if rec.ID == "" || rec.Spec.Validate() != nil {
			return nil
		}
		if !s.materialized[rec.ID] {
			s.jobs[rec.ID] = rec
		}
	}
	return sc.Err()
}

func (s *Store) walPath() string { return filepath.Join(s.dir, intakeWALName) }

// indexLocked folds one record into the dedup index. Callers hold s.mu and
// present records in ascending seq order on rebuild. A done job always wins
// its keys (it holds the cached report); otherwise the first live claimant
// keeps them; failed/canceled jobs release theirs.
func (s *Store) indexLocked(rec JobRecord) {
	keys := []string{dedupKey(rec.SpecHash, "")}
	if rec.IdempotencyKey != "" {
		keys = append(keys, dedupKey("", rec.IdempotencyKey))
	}
	for _, key := range keys {
		if !rec.dedupable() {
			if s.dedup[key] == rec.ID {
				delete(s.dedup, key)
			}
			continue
		}
		cur, ok := s.dedup[key]
		if !ok || cur == rec.ID {
			s.dedup[key] = rec.ID
			continue
		}
		if holder := s.jobs[cur]; holder.State != StateDone && rec.State == StateDone {
			s.dedup[key] = rec.ID
		}
	}
}

// orderInsertLocked adds id/seq to the seq-sorted index (no-op when
// present). Appends are the common case; out-of-order insertion only
// happens when concurrent submissions commit in different batches.
func (s *Store) orderInsertLocked(seq int, id string) {
	i := sort.Search(len(s.order), func(i int) bool { return s.order[i].seq >= seq })
	if i < len(s.order) && s.order[i].seq == seq {
		return
	}
	s.order = append(s.order, orderRef{})
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = orderRef{seq: seq, id: id}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Syncs returns how many intake-WAL fsyncs the store has issued — the
// denominator of the group-commit amortisation (service.intake_syncs).
func (s *Store) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}

// AllocRecord allocates the next job ID for a freshly submitted spec. The
// record is not yet registered anywhere — it becomes visible (and durable)
// only when a batch containing it commits through AppendIntake.
func (s *Store) AllocRecord(spec JobSpec, specHash, idemKey string, now time.Time) JobRecord {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.mu.Unlock()
	return JobRecord{
		ID:             fmt.Sprintf("job-%06d", seq),
		Seq:            seq,
		Spec:           spec,
		State:          StateQueued,
		SpecHash:       specHash,
		IdempotencyKey: idemKey,
		SubmittedAt:    now.UTC(),
	}
}

// AppendIntake durably commits a batch of freshly queued records: every
// record is appended to the intake WAL as one JSON line and the batch is
// synced with a single fsync — the group-commit write the batcher
// amortises across concurrent submissions. On success the records are
// registered in the in-memory view and the dedup index; on failure none
// are (the WAL may hold unsynced bytes, which recovery treats as a torn,
// unacked tail).
func (s *Store) AppendIntake(recs []JobRecord) error {
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("service: encoding intake record %s: %w", rec.ID, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("service: opening intake WAL: %w", err)
		}
		s.wal = f
	}
	if _, err := s.wal.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("service: appending intake batch: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("service: syncing intake batch: %w", err)
	}
	s.syncs++
	s.walBytes += int64(buf.Len())
	// Ledger the queued transitions as one batch write. No fsync here: the
	// intake WAL is the durability of the ack; these observational entries
	// ride along on the next synced append (a crash can drop the tail,
	// which ledger replay tolerates like a torn WAL batch).
	lrecs := make([]ledger.Record, len(recs))
	for i, rec := range recs {
		lrecs[i] = ledger.Record{Type: ledger.TypeJob, Job: rec.ID, Data: rec.State, Hash: rec.SpecHash}
	}
	if _, err := s.led.AppendBatch(lrecs, false); err != nil {
		return err
	}
	for _, rec := range recs {
		s.jobs[rec.ID] = rec
		s.orderInsertLocked(rec.Seq, rec.ID)
		s.indexLocked(rec)
	}
	if s.walBytes > s.walCompactAt {
		if err := s.compactWALLocked(); err != nil {
			// The batch is durable; a failed compaction only costs space.
			return nil
		}
	}
	return nil
}

// compactWALLocked rewrites the intake WAL keeping only records whose truth
// still lives there (no per-job file yet). Callers hold s.mu.
func (s *Store) compactWALLocked() error {
	var buf bytes.Buffer
	for _, ref := range s.order {
		if s.materialized[ref.id] {
			continue
		}
		line, err := json.Marshal(s.jobs[ref.id])
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	if err := atomicio.WriteFileBytes(s.walPath(), buf.Bytes()); err != nil {
		return fmt.Errorf("service: compacting intake WAL: %w", err)
	}
	s.walBytes = int64(buf.Len())
	s.walCompactAt = walCompactBytes
	if min := 2 * s.walBytes; min > s.walCompactAt {
		s.walCompactAt = min
	}
	return nil
}

// Put persists rec atomically as its per-job file and updates the
// in-memory view and dedup index. From this point the per-job file, not
// the intake WAL, is the record's durable truth.
func (s *Store) Put(rec JobRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding job record %s: %w", rec.ID, err)
	}
	path := filepath.Join(s.dir, "jobs", rec.ID+".json")
	if err := atomicio.WriteFileBytes(path, append(data, '\n')); err != nil {
		return fmt.Errorf("service: persisting job record %s: %w", rec.ID, err)
	}
	// Every transition appends to the run ledger; terminal states sync so
	// a "done" a client acts on can never vanish from the log.
	if _, err := s.led.Append(ledger.Record{
		Type: ledger.TypeJob, Job: rec.ID, Data: rec.State, Hash: rec.SpecHash,
	}, rec.Terminal()); err != nil {
		return err
	}
	s.mu.Lock()
	s.jobs[rec.ID] = rec
	s.orderInsertLocked(rec.Seq, rec.ID)
	s.materialized[rec.ID] = true
	s.indexLocked(rec)
	if rec.ReportHash != "" {
		s.etags[rec.ID] = reportETag(rec.ReportHash)
	} else {
		// A quarantine re-queue cleared the hash; drop the stale memo.
		delete(s.etags, rec.ID)
	}
	s.mu.Unlock()
	return nil
}

// Get returns the record for id.
func (s *Store) Get(id string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// DedupLookup resolves a dedup key ("spec:<hash>" or "idem:<key>") to the
// job currently serving duplicates of that submission.
func (s *Store) DedupLookup(key string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.dedup[key]
	if !ok {
		return JobRecord{}, false
	}
	rec, ok := s.jobs[id]
	return rec, ok
}

// Jobs returns every record, sorted by submission sequence.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.order))
	for _, ref := range s.order {
		out = append(out, s.jobs[ref.id])
	}
	return out
}

// JobsPage returns up to limit records in submission order, restricted to
// state when non-empty, starting strictly after afterSeq. lastSeq is the
// sequence of the final returned record (the next page's cursor).
func (s *Store) JobsPage(state string, afterSeq, limit int) (recs []JobRecord, lastSeq int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.order), func(i int) bool { return s.order[i].seq > afterSeq })
	for ; i < len(s.order) && len(recs) < limit; i++ {
		rec := s.jobs[s.order[i].id]
		if state != "" && rec.State != state {
			continue
		}
		recs = append(recs, rec)
		lastSeq = rec.Seq
	}
	return recs, lastSeq
}

// ReportPath returns where id's run report lives.
func (s *Store) ReportPath(id string) string {
	return filepath.Join(s.dir, "reports", id+".json")
}

// JournalPath returns where id's trial checkpoint journal lives.
func (s *Store) JournalPath(id string) string {
	return filepath.Join(s.dir, "journals", id+".journal")
}

// SaveReport persists a finished job's report atomically and returns the
// SHA-256 of the stored bytes (JobRecord.ReportHash, the ETag source). The
// stored bytes are exactly Report.WriteJSON's output, so fetching a report
// returns the same bytes a direct bankaware.Runner run would have written.
func (s *Store) SaveReport(id string, rep *metrics.Report) (string, error) {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return "", fmt.Errorf("service: rendering report for %s: %w", id, err)
	}
	if err := atomicio.WriteFileBytes(s.ReportPath(id), buf.Bytes()); err != nil {
		return "", fmt.Errorf("service: persisting report for %s: %w", id, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	hash := hex.EncodeToString(sum[:])
	// The report entry is the leaf a client's end-to-end verification
	// lands on; it must be durable before the job is announced done.
	if _, err := s.led.Append(ledger.Record{
		Type: ledger.TypeReport, Job: id, Hash: hash,
	}, true); err != nil {
		return "", err
	}
	s.mu.Lock()
	s.etags[id] = reportETag(hash)
	s.mu.Unlock()
	return hash, nil
}

// ReportBytes returns the stored report verbatim, with integrity
// verification: the bytes are re-hashed against the job record's content
// hash (falling back to the ledger's latest report entry for records
// written before report hashing). A mismatch — bit-rot, truncation, a torn
// external copy — quarantines the file and returns ErrCorrupt, so corrupt
// bytes are never served as valid.
func (s *Store) ReportBytes(id string) ([]byte, error) {
	data, err := os.ReadFile(s.ReportPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			if _, qerr := os.Stat(s.ReportPath(id) + ".quarantine"); qerr == nil {
				// Quarantined but not yet healed: corrupt, not merely absent.
				return nil, fmt.Errorf("%w: report for %s is quarantined", ErrCorrupt, id)
			}
		}
		return nil, err
	}
	want := ""
	s.mu.Lock()
	if rec, ok := s.jobs[id]; ok {
		want = rec.ReportHash
	}
	s.mu.Unlock()
	if want == "" {
		if e, ok := s.led.LatestReport(id); ok {
			want = e.Hash
		}
	}
	if want == "" {
		return data, nil
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != want {
		detail := fmt.Sprintf("report for %s hashes to %s, ledger/record say %s", id, got, want)
		if qerr := quarantineFile(s.ReportPath(id)); qerr != nil {
			return nil, fmt.Errorf("%w: %s (quarantine failed: %v)", ErrCorrupt, detail, qerr)
		}
		return nil, fmt.Errorf("%w: %s (quarantined)", ErrCorrupt, detail)
	}
	return data, nil
}

// quarantineFile moves a corrupt artifact aside as <path>.quarantine —
// never a silent deletion; the bytes stay on disk as evidence while the
// original path frees up for a clean re-run to heal.
func quarantineFile(path string) error {
	return os.Rename(path, path+".quarantine")
}

// ReportETag returns the strong ETag of id's stored report, hashing the
// file once and memoizing for records written before report hashing
// existed.
func (s *Store) ReportETag(id string) (string, error) {
	s.mu.Lock()
	if tag, ok := s.etags[id]; ok {
		s.mu.Unlock()
		return tag, nil
	}
	if rec, ok := s.jobs[id]; ok && rec.ReportHash != "" {
		tag := reportETag(rec.ReportHash)
		s.etags[id] = tag
		s.mu.Unlock()
		return tag, nil
	}
	s.mu.Unlock()
	data, err := s.ReportBytes(id)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	tag := reportETag(hex.EncodeToString(sum[:]))
	s.mu.Lock()
	s.etags[id] = tag
	if rec, ok := s.jobs[id]; ok && rec.ReportHash == "" {
		rec.ReportHash = hex.EncodeToString(sum[:])
		s.jobs[id] = rec
	}
	s.mu.Unlock()
	return tag, nil
}

// reportETag formats a report content hash as a strong HTTP ETag.
func reportETag(hash string) string { return `"sha256-` + hash + `"` }

// Close releases the intake WAL handle and the run ledger (syncing any
// buffered observational entries). Records and reports are plain files;
// nothing else needs teardown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.wal != nil {
		err = s.wal.Close()
		s.wal = nil
	}
	if s.led != nil {
		if lerr := s.led.Close(); err == nil {
			err = lerr
		}
	}
	return err
}
