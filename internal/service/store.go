package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bankaware/internal/atomicio"
	"bankaware/internal/metrics"
)

// Job states. A job is terminal in StateDone, StateFailed or StateCanceled;
// StateQueued and StateRunning survive restarts as "re-enqueue me".
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobRecord is the durable face of one job: the spec as submitted, the
// current state, and coarse lifecycle timestamps. Every state change is
// persisted atomically before it is announced, so a crashed or drained
// daemon restarts into a consistent picture: terminal jobs serve their
// stored reports, queued and running (i.e. interrupted) jobs re-enqueue.
type JobRecord struct {
	ID   string  `json:"id"`
	Seq  int     `json:"seq"`
	Spec JobSpec `json:"spec"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Error carries the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Attempts counts how many times the job entered StateRunning (a
	// drain-interrupted job that resumes counts twice).
	Attempts int `json:"attempts,omitempty"`

	SubmittedAt time.Time `json:"submittedAt"`
	StartedAt   time.Time `json:"startedAt"`
	FinishedAt  time.Time `json:"finishedAt"`
}

// Terminal reports whether the record's state is final.
func (r *JobRecord) Terminal() bool {
	return r.State == StateDone || r.State == StateFailed || r.State == StateCanceled
}

// Store is the daemon's durable result store: one JSON record per job under
// jobs/, the finished run report under reports/, and the Monte Carlo
// checkpoint journal under journals/. All writes go through
// internal/atomicio, so a killed daemon never leaves a truncated record and
// a report, once present, is complete.
type Store struct {
	dir string

	mu   sync.Mutex
	jobs map[string]JobRecord
	seq  int
}

// OpenStore opens (or initialises) the store rooted at dir and loads every
// job record in it.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"jobs", "reports", "journals"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("service: initialising store: %w", err)
		}
	}
	st := &Store{dir: dir, jobs: make(map[string]JobRecord)}
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("service: reading store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "jobs", e.Name()))
		if err != nil {
			return nil, fmt.Errorf("service: reading job record %s: %w", e.Name(), err)
		}
		var rec JobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("service: decoding job record %s: %w", e.Name(), err)
		}
		if err := rec.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("service: job record %s: %w", e.Name(), err)
		}
		st.jobs[rec.ID] = rec
		if rec.Seq > st.seq {
			st.seq = rec.Seq
		}
	}
	return st, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// NewRecord allocates the next job ID and persists the freshly queued
// record.
func (s *Store) NewRecord(spec JobSpec, now time.Time) (JobRecord, error) {
	s.mu.Lock()
	s.seq++
	rec := JobRecord{
		ID:          fmt.Sprintf("job-%06d", s.seq),
		Seq:         s.seq,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: now.UTC(),
	}
	s.mu.Unlock()
	if err := s.Put(rec); err != nil {
		return JobRecord{}, err
	}
	return rec, nil
}

// Put persists rec atomically and updates the in-memory view.
func (s *Store) Put(rec JobRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding job record %s: %w", rec.ID, err)
	}
	path := filepath.Join(s.dir, "jobs", rec.ID+".json")
	if err := atomicio.WriteFileBytes(path, append(data, '\n')); err != nil {
		return fmt.Errorf("service: persisting job record %s: %w", rec.ID, err)
	}
	s.mu.Lock()
	s.jobs[rec.ID] = rec
	s.mu.Unlock()
	return nil
}

// Delete withdraws a record entirely (a submission rejected after its
// record was persisted — the job must leave no trace).
func (s *Store) Delete(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, "jobs", id+".json"))
}

// Get returns the record for id.
func (s *Store) Get(id string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	return rec, ok
}

// Jobs returns every record, sorted by submission sequence.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	out := make([]JobRecord, 0, len(s.jobs))
	for _, rec := range s.jobs {
		out = append(out, rec)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// ReportPath returns where id's run report lives.
func (s *Store) ReportPath(id string) string {
	return filepath.Join(s.dir, "reports", id+".json")
}

// JournalPath returns where id's trial checkpoint journal lives.
func (s *Store) JournalPath(id string) string {
	return filepath.Join(s.dir, "journals", id+".journal")
}

// SaveReport persists a finished job's report atomically. The stored bytes
// are exactly Report.WriteJSON's output, so fetching a report returns the
// same bytes a direct bankaware.Runner run would have written.
func (s *Store) SaveReport(id string, rep *metrics.Report) error {
	if err := rep.WriteFile(s.ReportPath(id)); err != nil {
		return fmt.Errorf("service: persisting report for %s: %w", id, err)
	}
	return nil
}

// ReportBytes returns the stored report verbatim.
func (s *Store) ReportBytes(id string) ([]byte, error) {
	return os.ReadFile(s.ReportPath(id))
}
