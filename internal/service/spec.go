package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"bankaware/internal/experiments"
	"bankaware/internal/nuca"
	"bankaware/internal/trace"
)

// Job kinds. Each maps onto one of the library's evaluation campaigns.
const (
	// KindSet evaluates one workload set under the three policies
	// (experiments.RunSetContext — one bar group of Figs. 8/9).
	KindSet = "set"
	// KindExperiments runs the full Figs. 8/9 campaign: 8 Table III sets x
	// 3 policies flattened to 24 simulations.
	KindExperiments = "experiments"
	// KindMonteCarlo runs the Fig. 7 comparative Monte Carlo. Completed
	// trials are journaled, so drained jobs resume instead of restarting.
	KindMonteCarlo = "montecarlo"
)

// maxSpecBytes bounds a submission body; anything larger is rejected before
// decoding. The largest legitimate spec (8 workload names plus scalars) is
// a few hundred bytes.
const maxSpecBytes = 1 << 16

// JobSpec is the JSON job description the daemon accepts over POST
// /v1/jobs. Exactly one of the kind-specific sub-specs must be present and
// must match Kind. Execution knobs (priority, workers, timeout) shape when
// and how fast the job runs, never what it computes: a spec with a fixed
// seed produces byte-identical reports on every daemon.
type JobSpec struct {
	// Kind selects the campaign: set | experiments | montecarlo.
	Kind string `json:"kind"`
	// Label is a free-form identifier echoed in listings.
	Label string `json:"label,omitempty"`
	// Priority orders the queue: higher runs first, ties run in submission
	// order. Zero is the default service class.
	Priority int `json:"priority,omitempty"`
	// Workers bounds the job's internal fan-out; zero selects the server's
	// default. Results never depend on it.
	Workers int `json:"workers,omitempty"`
	// SimWorkers bounds the execution lanes inside each detailed simulation
	// (see sim.System.SetSimWorkers); zero or one runs the classic
	// sequential loop. Results never depend on it. Monte Carlo jobs ignore
	// it.
	SimWorkers int `json:"simWorkers,omitempty"`
	// TimeoutMS deadlines the whole job; a job exceeding it fails. Zero
	// means no per-job deadline.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// Seed overrides the campaign seed (the montecarlo draw seed, the
	// simulator seed of detailed runs). Zero keeps each campaign's default.
	Seed uint64 `json:"seed,omitempty"`
	// Observe retains full observation runs (epoch series, partition
	// events) in the report of detailed-simulation jobs, like running the
	// library with observation enabled. Off, the report carries the summary
	// only — byte-identical to a default Runner run. Live SSE epoch
	// streaming works either way.
	Observe bool `json:"observe,omitempty"`
	// Fidelity selects the execution engine of simulation jobs: "detailed"
	// (or empty) for the cycle-accurate simulator, "fast" for the
	// interval-model fast path. Unlike the execution knobs above, fidelity
	// changes what gets computed — fast and detailed submissions are
	// distinct specs with distinct cache entries. Monte Carlo jobs (already
	// analytic) reject a non-default fidelity.
	Fidelity string `json:"fidelity,omitempty"`

	Set         *SetSpec         `json:"set,omitempty"`
	Experiments *ExperimentsSpec `json:"experiments,omitempty"`
	MonteCarlo  *MonteCarloSpec  `json:"montecarlo,omitempty"`
}

// SetSpec parametrises a KindSet job.
type SetSpec struct {
	// Set picks a Table III set (1-8). Mutually exclusive with Workloads.
	Set int `json:"set,omitempty"`
	// Workloads lists exactly 8 catalog workloads, core 0 through 7.
	Workloads []string `json:"workloads,omitempty"`
	// Scale is the machine size: "model" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Instructions is the per-core budget; zero selects the model default.
	Instructions uint64 `json:"instructions,omitempty"`
	// EpochCycles overrides the repartitioning period when positive.
	EpochCycles int64 `json:"epochCycles,omitempty"`
}

// ExperimentsSpec parametrises a KindExperiments job.
type ExperimentsSpec struct {
	// Scale is the machine size: "model" (default) or "full".
	Scale string `json:"scale,omitempty"`
	// Instructions is the per-core budget; zero selects the scale default.
	Instructions uint64 `json:"instructions,omitempty"`
}

// MonteCarloSpec parametrises a KindMonteCarlo job.
type MonteCarloSpec struct {
	// Trials is the number of random mixes; zero selects the paper's 1000.
	Trials int `json:"trials,omitempty"`
}

// maxTrials caps a Monte Carlo submission. The paper's campaign is 1000
// trials; two orders of magnitude of headroom covers convergence studies
// without letting one submission occupy the daemon for days.
const maxTrials = 1_000_000

// DecodeJobSpec parses and validates one JSON job spec. It is strict — no
// unknown fields, no trailing data, bounded size — so a malformed
// submission is always a clean error, never a panic or a half-built job.
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSpecBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading job spec: %w", err)
	}
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("job spec exceeds %d bytes", maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("decoding job spec: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("job spec has trailing data")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// ValidationError marks a spec that decoded cleanly but describes an
// impossible job. The HTTP layer maps it to 422 Unprocessable Entity
// (distinct from 400 for bodies that are not even well-formed JSON).
type ValidationError struct {
	msg string
}

func (e *ValidationError) Error() string { return e.msg }

// invalidSpec builds a ValidationError.
func invalidSpec(format string, args ...any) error {
	return &ValidationError{msg: fmt.Sprintf(format, args...)}
}

// Validate reports structural problems with the spec.
func (s *JobSpec) Validate() error {
	if s.TimeoutMS < 0 {
		return fmt.Errorf("timeoutMs must be >= 0, got %d", s.TimeoutMS)
	}
	if s.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", s.Workers)
	}
	if s.SimWorkers < 0 {
		return fmt.Errorf("simWorkers must be >= 0, got %d", s.SimWorkers)
	}
	fidelity, err := experiments.ParseFidelity(s.Fidelity)
	if err != nil {
		return invalidSpec("unknown fidelity %q (want detailed|fast)", s.Fidelity)
	}
	present := 0
	for _, p := range []bool{s.Set != nil, s.Experiments != nil, s.MonteCarlo != nil} {
		if p {
			present++
		}
	}
	if present > 1 {
		return fmt.Errorf("job spec carries %d kind sub-specs, want exactly the one matching kind %q", present, s.Kind)
	}
	switch s.Kind {
	case KindSet:
		if s.Set == nil {
			return fmt.Errorf("kind %q needs a \"set\" sub-spec", s.Kind)
		}
		return s.Set.validate()
	case KindExperiments:
		if s.Experiments == nil {
			return fmt.Errorf("kind %q needs an \"experiments\" sub-spec", s.Kind)
		}
		return validateScale(s.Experiments.Scale)
	case KindMonteCarlo:
		if s.MonteCarlo == nil {
			return fmt.Errorf("kind %q needs a \"montecarlo\" sub-spec", s.Kind)
		}
		if t := s.MonteCarlo.Trials; t < 0 || t > maxTrials {
			return fmt.Errorf("trials must be in [0, %d], got %d", maxTrials, t)
		}
		if fidelity == experiments.FidelityFast {
			return invalidSpec("montecarlo jobs are analytic and have no fidelity tiers")
		}
		return nil
	case "":
		return fmt.Errorf("job spec has no kind (want %s|%s|%s)", KindSet, KindExperiments, KindMonteCarlo)
	default:
		return fmt.Errorf("unknown job kind %q (want %s|%s|%s)", s.Kind, KindSet, KindExperiments, KindMonteCarlo)
	}
}

func validateScale(scale string) error {
	switch scale {
	case "", "model", "full":
		return nil
	default:
		return fmt.Errorf("unknown scale %q (want model|full)", scale)
	}
}

func (s *SetSpec) validate() error {
	if err := validateScale(s.Scale); err != nil {
		return err
	}
	if s.EpochCycles < 0 {
		return fmt.Errorf("epochCycles must be >= 0, got %d", s.EpochCycles)
	}
	switch {
	case s.Set != 0 && len(s.Workloads) > 0:
		return fmt.Errorf("set and workloads are mutually exclusive")
	case s.Set != 0:
		if s.Set < 1 || s.Set > 8 {
			return fmt.Errorf("set must be 1-8, got %d", s.Set)
		}
	case len(s.Workloads) > 0:
		if len(s.Workloads) != nuca.NumCores {
			return fmt.Errorf("need %d workloads, got %d", nuca.NumCores, len(s.Workloads))
		}
		for _, w := range s.Workloads {
			if _, err := trace.SpecByName(w); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("set spec needs a Table III set number or 8 workloads")
	}
	return nil
}

// fidelityFor resolves a validated spec's execution fidelity.
func fidelityFor(spec JobSpec) experiments.Fidelity {
	f, err := experiments.ParseFidelity(spec.Fidelity)
	if err != nil {
		// Validate admits only parseable fidelities.
		panic("service: unvalidated spec: " + err.Error())
	}
	return f
}

// fidelityStamp is the result/report fidelity tag of a spec: "fast" for
// fast jobs, empty for detailed ones (whose bytes predate the field).
func fidelityStamp(spec JobSpec) string {
	if fidelityFor(spec) == experiments.FidelityFast {
		return string(experiments.FidelityFast)
	}
	return ""
}
