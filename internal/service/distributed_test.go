package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startWorker attaches one pulling worker to a coordinator test server.
func startWorker(t *testing.T, ts *httptest.Server, name string, hook func(stage string, g *ShardGrant)) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: ts.URL, Name: name, Dir: t.TempDir(),
		Workers: 2, Poll: 10 * time.Millisecond, OnShard: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// reportBytes reads the stored report of a finished job.
func reportBytes(t *testing.T, svc *Service, id string) []byte {
	t.Helper()
	data, err := os.ReadFile(svc.Store().ReportPath(id))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDistributedByteIdenticalAcrossWorkerCounts is the determinism
// property test: the same campaign sharded across 1, 2 and 5 workers must
// produce a merged report byte-identical to the single-node library run.
func TestDistributedByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const trials = 40
	want := directMonteCarloBytes(t, trials, 2009)
	for _, workers := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			svc, ts := startHTTP(t, Config{
				Coordinator: true, LeaseTTL: 2 * time.Second, ShardUnits: 8,
			}, true)
			for i := 0; i < workers; i++ {
				startWorker(t, ts, fmt.Sprintf("w%d", i), nil)
			}
			rec, err := svc.Submit(mcSpec(trials, 0))
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, svc, rec.ID, StateDone)
			if got := reportBytes(t, svc, rec.ID); !bytes.Equal(got, want) {
				t.Fatalf("distributed report (%d workers) differs from single-node run:\n got %d bytes\nwant %d bytes", workers, len(got), len(want))
			}
		})
	}
}

// leaseAll drains the coordinator's pending shards for one job into grants.
func leaseAll(t *testing.T, svc *Service, want int) []*ShardGrant {
	t.Helper()
	var grants []*ShardGrant
	deadline := time.Now().Add(30 * time.Second)
	for len(grants) < want && time.Now().Before(deadline) {
		g, ok, err := svc.Lease("direct")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		grants = append(grants, g)
	}
	if len(grants) != want {
		t.Fatalf("leased %d shards, want %d", len(grants), want)
	}
	return grants
}

// TestDistributedShuffledCompletionOrders drives the work protocol
// directly: every shard is computed up front, then uploaded in several
// fixed permutations — the merged bytes must not depend on completion
// order (the merge is by shard index, not arrival).
func TestDistributedShuffledCompletionOrders(t *testing.T) {
	const trials = 30 // ShardUnits 6 -> 5 shards
	want := directMonteCarloBytes(t, trials, 2009)
	orders := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
		{1, 4, 0, 3, 2},
	}
	for _, order := range orders {
		t.Run(fmt.Sprintf("order=%v", order), func(t *testing.T) {
			svc, _ := startHTTP(t, Config{
				Coordinator: true, LeaseTTL: time.Minute, ShardUnits: 6,
			}, true)
			rec, err := svc.Submit(mcSpec(trials, 0))
			if err != nil {
				t.Fatal(err)
			}
			grants := leaseAll(t, svc, len(order))
			uploads := make([]*ShardUpload, len(grants))
			for i, g := range grants {
				units, err := executeShardUnits(context.Background(), g.Spec, g.From, g.To, shardOptions{Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				uploads[i] = &ShardUpload{Job: g.Job, Shard: g.Shard, Lease: g.Lease, Units: units, Sum: unitsSum(units)}
			}
			for _, i := range order {
				if err := svc.CompleteShard(uploads[i]); err != nil {
					t.Fatal(err)
				}
			}
			waitState(t, svc, rec.ID, StateDone)
			if got := reportBytes(t, svc, rec.ID); !bytes.Equal(got, want) {
				t.Fatalf("completion order %v changed the merged report bytes", order)
			}
		})
	}
}

// TestDistributedCompleteIsIdempotent re-uploads a finished shard and a
// mismatched one: the duplicate is accepted silently, the bad unit count
// rejected, and neither perturbs the final report.
func TestDistributedCompleteIsIdempotent(t *testing.T) {
	const trials = 12 // ShardUnits 6 -> 2 shards
	svc, _ := startHTTP(t, Config{
		Coordinator: true, LeaseTTL: time.Minute, ShardUnits: 6,
	}, true)
	rec, err := svc.Submit(mcSpec(trials, 0))
	if err != nil {
		t.Fatal(err)
	}
	grants := leaseAll(t, svc, 2)
	var uploads []*ShardUpload
	for _, g := range grants {
		units, err := executeShardUnits(context.Background(), g.Spec, g.From, g.To, shardOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		uploads = append(uploads, &ShardUpload{Job: g.Job, Shard: g.Shard, Lease: g.Lease, Units: units, Sum: unitsSum(units)})
	}
	// Truncated upload: wrong unit count for the shard's range.
	bad := &ShardUpload{Job: uploads[0].Job, Shard: uploads[0].Shard, Lease: uploads[0].Lease,
		Units: uploads[0].Units[:1]}
	if err := svc.CompleteShard(bad); err == nil {
		t.Fatal("truncated upload accepted")
	}
	if err := svc.CompleteShard(uploads[0]); err != nil {
		t.Fatal(err)
	}
	// Duplicate completion (a worker retrying after a lost ack).
	if err := svc.CompleteShard(uploads[0]); err != nil {
		t.Fatalf("duplicate completion rejected: %v", err)
	}
	if err := svc.CompleteShard(uploads[1]); err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, rec.ID, StateDone)
	if got, want := reportBytes(t, svc, rec.ID), directMonteCarloBytes(t, trials, 2009); !bytes.Equal(got, want) {
		t.Fatal("report differs from single-node run after duplicate uploads")
	}
}

// TestDistributedLeaseExpiryRequeues proves the failover path without real
// workers: lease a shard, never renew it, and require the coordinator to
// re-queue it and grant it again to someone else.
func TestDistributedLeaseExpiryRequeues(t *testing.T) {
	svc, _ := startHTTP(t, Config{
		Coordinator: true, LeaseTTL: 80 * time.Millisecond, ShardUnits: 10,
	}, true)
	rec, err := svc.Submit(mcSpec(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	grants := leaseAll(t, svc, 1)
	dead := grants[0]

	// Let the lease rot; the next pull (or the expiry tick) must steal it.
	var stolen *ShardGrant
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		g, ok, err := svc.Lease("thief")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			stolen = g
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stolen == nil {
		t.Fatal("expired lease never re-granted")
	}
	if stolen.Shard != dead.Shard || stolen.Lease == dead.Lease {
		t.Fatalf("stole shard %d lease %q, want shard %d with a fresh lease", stolen.Shard, stolen.Lease, dead.Shard)
	}
	// The dead worker's renewal must now be rejected: its lease is history.
	if err := svc.Renew(&ShardAck{Job: dead.Job, Shard: dead.Shard, Lease: dead.Lease}); err == nil {
		t.Fatal("superseded lease renewed")
	}
	units, err := executeShardUnits(context.Background(), stolen.Spec, stolen.From, stolen.To, shardOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CompleteShard(&ShardUpload{Job: stolen.Job, Shard: stolen.Shard, Lease: stolen.Lease, Units: units, Sum: unitsSum(units)}); err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, rec.ID, StateDone)
	if got, want := reportBytes(t, svc, rec.ID), directMonteCarloBytes(t, 10, 2009); !bytes.Equal(got, want) {
		t.Fatal("report differs from single-node run after a lease steal")
	}
}

// TestDistributedChaosKillWorkerGolden is the chaos acceptance e2e:
// coordinator plus three in-process workers run the pinned set-1 campaign
// (the repository's golden spec); one worker is killed mid-shard with
// SIGKILL semantics — no farewell, no upload, its lease simply rots. The
// shard must re-queue on expiry, a surviving worker must steal it, and the
// merged report must be byte-identical to testdata/golden-set1-report.json.
func TestDistributedChaosKillWorkerGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full set evaluation in -short mode")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden-set1-report.json"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}

	svc, ts := startHTTP(t, Config{
		Coordinator: true, LeaseTTL: 500 * time.Millisecond, ShardUnits: 1,
	}, true)

	// Worker 0 is the victim: the moment it starts its first shard it is
	// killed (from a goroutine — Kill waits for the pull loop, and the hook
	// runs on it). Workers 1 and 2 keep pulling.
	var (
		killOnce sync.Once
		killed   = make(chan struct{})
		victim   *Worker
	)
	victim = startWorker(t, ts, "victim", func(stage string, g *ShardGrant) {
		if stage != WorkerShardStart {
			return
		}
		killOnce.Do(func() {
			go func() {
				victim.Kill()
				close(killed)
			}()
		})
	})
	startWorker(t, ts, "survivor-1", nil)
	startWorker(t, ts, "survivor-2", nil)

	_, rec := postJob(t, ts,
		`{"kind":"set","observe":true,"set":{"set":1,"epochCycles":200000,"instructions":300000}}`)

	select {
	case <-killed:
	case <-time.After(60 * time.Second):
		t.Fatal("victim worker never leased a shard")
	}
	done := waitState(t, svc, rec.ID, StateDone)
	if done.ReportHash == "" {
		t.Fatal("finished job has no report hash")
	}

	// The job's event stream must record the failover: the victim's lease
	// expired and its shard was re-queued, then completed by a survivor.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var requeued, victimLeases int
	for _, ev := range readSSE(t, resp) {
		if ev.typ != EventShard {
			continue
		}
		if strings.Contains(ev.data, `"requeued"`) && strings.Contains(ev.data, "lease expired") {
			requeued++
		}
		if strings.Contains(ev.data, `"leased"`) && strings.Contains(ev.data, `"victim"`) {
			victimLeases++
		}
	}
	if victimLeases == 0 {
		t.Fatal("victim never held a lease — the kill tested nothing")
	}
	if requeued == 0 {
		t.Fatal("no shard was re-queued by lease expiry after the kill")
	}

	if got := reportBytes(t, svc, rec.ID); !bytes.Equal(got, golden) {
		t.Fatalf("merged report after worker kill differs from golden file (%d vs %d bytes)", len(got), len(golden))
	}
}

// TestShardWALCompactionRacesRenewal hammers lease renewals on one shard
// while other shards complete — with the compaction threshold shrunk so
// the WAL rewrites many times mid-traffic — then restarts the coordinator
// over the same store and requires (a) the completed shards to survive the
// replay and (b) the resumed job to finish byte-identical.
func TestShardWALCompactionRacesRenewal(t *testing.T) {
	old := shardWALCompactBytes
	shardWALCompactBytes = 64 // force a compaction on nearly every append
	t.Cleanup(func() { shardWALCompactBytes = old })

	const trials = 40 // ShardUnits 5 -> 8 shards
	dir := t.TempDir()
	svc, _ := startHTTP(t, Config{
		Dir: dir, Coordinator: true, LeaseTTL: 300 * time.Millisecond, ShardUnits: 5,
	}, true)
	rec, err := svc.Submit(mcSpec(trials, 0))
	if err != nil {
		t.Fatal(err)
	}
	grants := leaseAll(t, svc, 5)
	held, completing := grants[0], grants[1:]

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // renewal traffic on the held lease
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := svc.Renew(&ShardAck{Job: held.Job, Shard: held.Shard, Lease: held.Lease}); err != nil {
				t.Errorf("renewal %d rejected: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	go func() { // completion traffic driving WAL appends + compactions
		defer wg.Done()
		for _, g := range completing {
			units, err := executeShardUnits(context.Background(), g.Spec, g.From, g.To, shardOptions{Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			if err := svc.CompleteShard(&ShardUpload{Job: g.Job, Shard: g.Shard, Lease: g.Lease, Units: units, Sum: unitsSum(units)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	statuses, ok := svc.ShardStatuses(rec.ID)
	if !ok {
		t.Fatal("job not distributing")
	}
	var doneShards int
	for _, st := range statuses {
		if st.State == ShardDone {
			doneShards++
		}
		if st.Shard == held.Shard && st.State != ShardLeased {
			t.Fatalf("held shard %d is %s after renewals, want leased", st.Shard, st.State)
		}
	}
	if doneShards != len(completing) {
		t.Fatalf("%d shards done, want %d", doneShards, len(completing))
	}

	// Restart over the same store: the compacted WAL plus the partial files
	// must reconstruct the exact same state, and the resumed job must merge
	// to the single-node bytes once the remaining shards complete.
	svc.Close()
	svc2, err := New(Config{
		Dir: dir, Coordinator: true, LeaseTTL: 300 * time.Millisecond, ShardUnits: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc2.Close() })

	remaining := 8 - len(completing) // the held shard (its lease expires) + 3 never leased
	for i := 0; i < remaining; i++ {
		g := leaseAll(t, svc2, 1)[0]
		units, err := executeShardUnits(context.Background(), g.Spec, g.From, g.To, shardOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc2.CompleteShard(&ShardUpload{Job: g.Job, Shard: g.Shard, Lease: g.Lease, Units: units, Sum: unitsSum(units)}); err != nil {
			t.Fatal(err)
		}
	}
	waitState(t, svc2, rec.ID, StateDone)
	if got, want := reportBytes(t, svc2, rec.ID), directMonteCarloBytes(t, trials, 2009); !bytes.Equal(got, want) {
		t.Fatal("resumed distributed report differs from single-node run")
	}
}

// TestSubmitDedupDuplicateAtWorker covers the dedup satellite: a worker
// daemon that also serves its own intake API receives the same spec the
// coordinator is distributing. The worker's own store dedups the repeat
// submission, and its locally-computed report is byte-identical to the
// coordinator's distributed merge — the same bytes exist on both sides
// without any coordination between their dedup indexes.
func TestSubmitDedupDuplicateAtWorker(t *testing.T) {
	spec := mcSpec(25, 0)
	want := directMonteCarloBytes(t, 25, 2009)

	coord, ts := startHTTP(t, Config{
		Coordinator: true, LeaseTTL: 2 * time.Second, ShardUnits: 10,
	}, true)
	startWorker(t, ts, "w0", nil)

	// The worker daemon's own service: plain local execution, same API.
	workerSvc, _ := startHTTP(t, Config{Workers: 2}, true)

	rec, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wrec, hit, err := workerSvc.SubmitDedup(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first worker-side submission reported as duplicate")
	}
	dup, hit, err := workerSvc.SubmitDedup(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if !hit || dup.ID != wrec.ID {
		t.Fatalf("duplicate at worker not coalesced: hit=%v id=%s want %s", hit, dup.ID, wrec.ID)
	}

	waitState(t, coord, rec.ID, StateDone)
	waitState(t, workerSvc, wrec.ID, StateDone)
	coordBytes := reportBytes(t, coord, rec.ID)
	workerBytes := reportBytes(t, workerSvc, wrec.ID)
	if !bytes.Equal(coordBytes, want) {
		t.Fatal("distributed report differs from single-node run")
	}
	if !bytes.Equal(workerBytes, coordBytes) {
		t.Fatal("worker-local report differs from the coordinator's distributed merge")
	}
}

// TestPlanShards pins the shard planner's arithmetic.
func TestPlanShards(t *testing.T) {
	cases := []struct {
		n, size int
		want    []shardSpan
	}{
		{10, 4, []shardSpan{{0, 0, 4}, {1, 4, 8}, {2, 8, 10}}},
		{3, 0, []shardSpan{{0, 0, 1}, {1, 1, 2}, {2, 2, 3}}}, // default: n/16 rounded up -> 1
		{1, 100, []shardSpan{{0, 0, 1}}},
		{32, 0, []shardSpan{{0, 0, 2}, {1, 2, 4}, {2, 4, 6}, {3, 6, 8}, {4, 8, 10}, {5, 10, 12}, {6, 12, 14}, {7, 14, 16}, {8, 16, 18}, {9, 18, 20}, {10, 20, 22}, {11, 22, 24}, {12, 24, 26}, {13, 26, 28}, {14, 28, 30}, {15, 30, 32}}},
	}
	for _, c := range cases {
		p := planShards("j", c.n, c.size)
		if p.Units != c.n || len(p.Shards) != len(c.want) {
			t.Fatalf("planShards(%d, %d): %d shards over %d units, want %d", c.n, c.size, len(p.Shards), p.Units, len(c.want))
		}
		for i, span := range p.Shards {
			if span != c.want[i] {
				t.Fatalf("planShards(%d, %d)[%d] = %+v, want %+v", c.n, c.size, i, span, c.want[i])
			}
		}
	}
}
