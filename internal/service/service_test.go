package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bankaware/internal/experiments"
	"bankaware/internal/montecarlo"
	"bankaware/internal/runner"
)

// mcSpec builds a small deterministic Monte Carlo job. Tests that need
// several distinct jobs must vary trials or seed: priority and label are
// execution metadata, excluded from the spec hash, so two mcSpecs differing
// only there are the same content-addressed job.
func mcSpec(trials, priority int) JobSpec {
	return JobSpec{
		Kind: KindMonteCarlo, Priority: priority, Seed: 2009,
		MonteCarlo: &MonteCarloSpec{Trials: trials},
	}
}

// directMonteCarloBytes runs the same campaign through the library directly
// and renders its report — the byte-identity reference.
func directMonteCarloBytes(t *testing.T, trials int, seed uint64) []byte {
	t.Helper()
	cfg := montecarlo.DefaultConfig()
	cfg.Trials = trials
	cfg.Seed = seed
	res, err := montecarlo.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Report().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, s *Service, id, state string) JobRecord {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := s.Store().Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if rec.State == state {
			return rec
		}
		if rec.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, rec.State, rec.Error, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, state)
	return JobRecord{}
}

func TestSubmitRunsToByteIdenticalReport(t *testing.T) {
	svc, err := New(Config{Dir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rec, err := svc.Submit(mcSpec(40, 0))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, svc, rec.ID, StateDone)
	if done.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", done.Attempts)
	}
	got, err := svc.Store().ReportBytes(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := directMonteCarloBytes(t, 40, 2009)
	if !bytes.Equal(got, want) {
		t.Fatalf("service report differs from direct run:\nservice: %.200s\ndirect:  %.200s", got, want)
	}
}

// TestSimWorkersIsExecutionKnob pins the two halves of the simWorkers
// contract: the knob never reaches the content hash (two submissions
// differing only there are the same cache entry), and a job served with the
// pipelined executor writes byte-for-byte the report a direct sequential
// library run produces.
func TestSimWorkersIsExecutionKnob(t *testing.T) {
	base := JobSpec{
		Kind: KindSet, Observe: true,
		Set: &SetSpec{Set: 1, EpochCycles: 100_000, Instructions: 120_000},
	}
	lanes := base
	lanes.SimWorkers = 4
	if hb, hl := SpecHash(base), SpecHash(lanes); hb != hl {
		t.Fatalf("simWorkers leaked into the spec hash: %s vs %s", hb, hl)
	}

	svc, err := New(Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rec, err := svc.Submit(lanes)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, rec.ID, StateDone)
	got, err := svc.Store().ReportBytes(rec.ID)
	if err != nil {
		t.Fatal(err)
	}

	cfg := experiments.ScaleModel.Config()
	cfg.EpochCycles = 100_000
	res, err := experiments.RunSetContext(context.Background(), cfg, 1,
		experiments.TableIIISets[0][:], 120_000, experiments.Options{Workers: 1, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.Report().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("parallel-executor service report differs from direct sequential run:\nservice: %.200s\ndirect:  %.200s", got, want.Bytes())
	}
}

func TestQueueBackpressure(t *testing.T) {
	// No Start: nothing dequeues, so the queue fills deterministically.
	svc, err := New(Config{Dir: t.TempDir(), QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(mcSpec(10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(mcSpec(11, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(mcSpec(12, 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	// The rejected submission left no record behind.
	if n := len(svc.Store().Jobs()); n != 2 {
		t.Fatalf("%d records after rejection, want 2", n)
	}
}

func TestSubmitWhileDraining(t *testing.T) {
	svc, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	svc.Drain(context.Background())
	if _, err := svc.Submit(mcSpec(10, 0)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	svc.Close()
}

func TestCancelQueuedJob(t *testing.T) {
	svc, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := svc.Submit(mcSpec(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := svc.Cancel(rec.ID)
	if !ok || got.State != StateCanceled {
		t.Fatalf("cancel: ok=%v state=%s, want canceled", ok, got.State)
	}
	if _, ok := svc.Cancel(rec.ID); ok {
		t.Fatal("second cancel succeeded, want conflict")
	}
	// The terminal state survived to disk.
	reopened, err := OpenStore(svc.Store().Dir())
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := reopened.Get(rec.ID); r.State != StateCanceled {
		t.Fatalf("persisted state %s, want canceled", r.State)
	}
}

func TestPriorityOrdersExecution(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var order []string
	seen := map[string]bool{}
	svc, err := New(Config{
		Dir: dir, Jobs: 1, Workers: 1,
		OnProgress: func(id string, p runner.Progress) {
			mu.Lock()
			if !seen[id] {
				seen[id] = true
				order = append(order, id)
			}
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Submit before Start so all three are queued when execution begins.
	low, err := svc.Submit(mcSpec(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	high1, err := svc.Submit(mcSpec(6, 9))
	if err != nil {
		t.Fatal(err)
	}
	high2, err := svc.Submit(mcSpec(7, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, low.ID, StateDone)
	waitState(t, svc, high1.ID, StateDone)
	waitState(t, svc, high2.ID, StateDone)

	mu.Lock()
	defer mu.Unlock()
	want := []string{high1.ID, high2.ID, low.ID}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v (priority desc, then submission order)", order, want)
	}
}

func TestDrainCheckpointsAndResumeIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const trials = 200

	// Throttle trial completion so the drain reliably lands mid-campaign,
	// and signal once enough trials finished to make the checkpoint
	// meaningful.
	enough := make(chan struct{})
	var once sync.Once
	svc, err := New(Config{
		Dir: dir, Workers: 2,
		OnProgress: func(id string, p runner.Progress) {
			if p.Kind != runner.JobDone {
				return
			}
			time.Sleep(2 * time.Millisecond)
			if p.Done >= 5 {
				once.Do(func() { close(enough) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"kind":"montecarlo","seed":2009,"montecarlo":{"trials":%d}}`, trials)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit -> %d, want 202", resp.StatusCode)
	}
	var rec JobRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-enough:
	case <-time.After(60 * time.Second):
		t.Fatal("campaign never reached 5 completed trials")
	}
	// Drain with an expired grace: the in-flight job is interrupted,
	// checkpoints its journal and returns to the queue.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	svc.Drain(expired)
	ts.Close()
	svc.Close()

	after, ok := svc.Store().Get(rec.ID)
	if !ok || after.State != StateQueued {
		t.Fatalf("state after drain = %s, want queued (re-enqueue on restart)", after.State)
	}
	journal, err := runner.OpenJournal(svc.Store().JournalPath(rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	checkpointed := journal.Len()
	journal.Close()
	if checkpointed == 0 {
		t.Fatal("no trials checkpointed before drain")
	}
	t.Logf("drained with %d/%d trials checkpointed", checkpointed, trials)

	// Restart: a fresh daemon over the same store resumes the job from its
	// journal and finishes it.
	svc2, err := New(Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	done := waitState(t, svc2, rec.ID, StateDone)
	if done.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one interrupted, one resumed)", done.Attempts)
	}
	// Fetch over HTTP like a client would: the served bytes must match an
	// uninterrupted direct library run exactly.
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/v1/jobs/" + rec.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := directMonteCarloBytes(t, trials, 2009)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("resumed report differs from an uninterrupted direct run")
	}
}

func TestCancelRunningJob(t *testing.T) {
	// Throttle every trial so the job is reliably mid-flight when cancelled.
	started := make(chan struct{})
	var once sync.Once
	svc, err := New(Config{
		Dir: dirForCancel(t), Workers: 1,
		OnProgress: func(id string, p runner.Progress) {
			once.Do(func() { close(started) })
			time.Sleep(time.Millisecond)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	rec, err := svc.Submit(mcSpec(500, 0))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, ok := svc.Cancel(rec.ID); !ok {
		t.Fatal("cancel of a running job refused")
	}
	got := waitState(t, svc, rec.ID, StateCanceled)
	if got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
}

func dirForCancel(t *testing.T) string { return t.TempDir() }

func TestJobTimeoutFails(t *testing.T) {
	svc, err := New(Config{
		Dir: t.TempDir(), Workers: 1,
		// Keep each trial slow enough that a 1 ms deadline always lands.
		OnProgress: func(id string, p runner.Progress) { time.Sleep(time.Millisecond) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	spec := mcSpec(500, 0)
	spec.TimeoutMS = 1
	rec, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, svc, rec.ID, StateFailed)
	if got.Error == "" {
		t.Fatal("failed job has no error message")
	}
}
