package service

import (
	"context"
	"os"

	"bankaware/internal/experiments"
	"bankaware/internal/metrics"
	"bankaware/internal/montecarlo"
	"bankaware/internal/runner"
)

// progressEvent is the payload of EventProgress frames: one engine
// notification with the counters after it.
type progressEvent struct {
	Event   string `json:"event"` // started | done | failed | retried
	Job     int    `json:"job"`
	Total   int    `json:"total"`
	Started int    `json:"started"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	Retried int    `json:"retried,omitempty"`
	// ElapsedMS is the finished job's wall time.
	ElapsedMS int64  `json:"elapsedMs,omitempty"`
	Error     string `json:"error,omitempty"`
}

// epochEvent is the payload of EventEpoch frames: one live epoch sample
// tagged with the simulation run it belongs to.
type epochEvent struct {
	Run    string              `json:"run"`
	Sample metrics.EpochSample `json:"sample"`
}

// progressFor builds the job's engine hook: count into the service registry,
// stream to the job's SSE hub, then forward to the configured observer.
func (s *Service) progressFor(jb *job) runner.ProgressFunc {
	return runner.CountInto(s.reg, func(p runner.Progress) {
		ev := progressEvent{
			Event: p.Kind.String(), Job: p.Job, Total: p.Total,
			Started: p.Started, Done: p.Done, Failed: p.Failed, Retried: p.Retried,
			ElapsedMS: p.Elapsed.Milliseconds(),
		}
		if p.Err != nil {
			ev.Error = p.Err.Error()
		}
		jb.hub.publish(EventProgress, ev)
		if s.cfg.OnProgress != nil {
			s.cfg.OnProgress(jb.id, p)
		}
	})
}

// sampleFor builds the job's live epoch tap.
func (s *Service) sampleFor(jb *job) func(run string, sm metrics.EpochSample) {
	return func(run string, sm metrics.EpochSample) {
		jb.hub.publish(EventEpoch, epochEvent{Run: run, Sample: sm})
	}
}

// workersFor resolves the job's fan-out bound.
func (s *Service) workersFor(spec JobSpec) int {
	if spec.Workers > 0 {
		return spec.Workers
	}
	return s.cfg.Workers
}

func scaleFor(name string) experiments.Scale {
	if name == "full" {
		return experiments.ScaleFull
	}
	return experiments.ScaleModel
}

// runJob executes the job's campaign through the same internal entry points
// bankaware.Runner uses and builds the report with the same builders — the
// stored report bytes are exactly what a direct Runner run with the same
// parameters would have written.
func (s *Service) runJob(ctx context.Context, jb *job) (*metrics.Report, error) {
	if s.coord != nil {
		// Coordinator mode: the campaign executes on pulling workers, and
		// the merged report is byte-identical to the local paths below.
		return s.runDistributed(ctx, jb)
	}
	spec := jb.spec
	switch spec.Kind {
	case KindSet:
		return s.runSet(ctx, jb)
	case KindExperiments:
		return s.runExperiments(ctx, jb)
	default: // KindMonteCarlo; Validate admits nothing else
		return s.runMonteCarlo(ctx, jb)
	}
}

func (s *Service) experimentOptions(jb *job) experiments.Options {
	return experiments.Options{
		Workers:    s.workersFor(jb.spec),
		Progress:   s.progressFor(jb),
		Sample:     s.sampleFor(jb),
		Seed:       jb.spec.Seed,
		Observe:    jb.spec.Observe,
		SimWorkers: jb.spec.SimWorkers,
		Fidelity:   fidelityFor(jb.spec),
	}
}

func (s *Service) runSet(ctx context.Context, jb *job) (*metrics.Report, error) {
	sub := jb.spec.Set
	cfg := scaleFor(sub.Scale).Config()
	if sub.EpochCycles > 0 {
		cfg.EpochCycles = sub.EpochCycles
	}
	instructions := sub.Instructions
	if instructions == 0 {
		// Mirror Runner.RunSet: zero selects the model-scale default.
		instructions = experiments.ScaleModel.DefaultInstructions()
	}
	workloads := sub.Workloads
	if sub.Set != 0 {
		workloads = experiments.TableIIISets[sub.Set-1][:]
	}
	res, err := experiments.RunSetContext(ctx, cfg, sub.Set, workloads, instructions, s.experimentOptions(jb))
	if err != nil {
		return nil, err
	}
	return res.Report(), nil
}

func (s *Service) runExperiments(ctx context.Context, jb *job) (*metrics.Report, error) {
	sub := jb.spec.Experiments
	res, err := experiments.RunFig8Fig9Context(ctx, scaleFor(sub.Scale), sub.Instructions, s.experimentOptions(jb))
	if err != nil {
		return nil, err
	}
	return res.Report(), nil
}

func (s *Service) runMonteCarlo(ctx context.Context, jb *job) (*metrics.Report, error) {
	cfg := montecarlo.DefaultConfig()
	if jb.spec.MonteCarlo.Trials > 0 {
		cfg.Trials = jb.spec.MonteCarlo.Trials
	}
	if jb.spec.Seed != 0 {
		cfg.Seed = jb.spec.Seed
	}
	// Every Monte Carlo job keeps a checkpoint journal: completed trials
	// survive a drain or crash, and the resumed campaign's report is
	// byte-identical to an uninterrupted one (montecarlo's contract).
	journal, err := runner.OpenJournal(s.store.JournalPath(jb.id))
	if err != nil {
		return nil, err
	}
	opt := montecarlo.Options{
		Workers:  s.workersFor(jb.spec),
		Progress: s.progressFor(jb),
		Journal:  journal,
	}
	res, err := montecarlo.RunContext(ctx, cfg, opt)
	closeErr := journal.Close()
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	// The campaign finished; the journal has served its purpose.
	os.Remove(s.store.JournalPath(jb.id))
	return res.Report(), nil
}
