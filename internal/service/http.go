package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"bankaware/internal/metrics"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/jobs            submit a job spec    -> 202 JobRecord
//	GET  /v1/jobs            list jobs            -> 200 [JobRecord]
//	GET  /v1/jobs/{id}       one job              -> 200 JobRecord
//	GET  /v1/jobs/{id}/report  finished report    -> 200 (stored bytes, verbatim)
//	GET  /v1/jobs/{id}/events  live SSE stream (Last-Event-ID replay)
//	POST /v1/jobs/{id}/cancel  cancel             -> 200 JobRecord
//	GET  /v1/diff?a=ID&b=ID  compare two reports  -> 200 {identical, differences}
//	GET  /healthz            liveness + drain state
//	/debug/...               pprof, expvar, service metrics
//
// Submissions are rejected with 400 (malformed spec), 429 (queue full) or
// 503 (draining).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("/debug/", metrics.DebugMux(s.reg))
	return mux
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits {"error": ...} with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec, err := s.Submit(*spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, rec)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Jobs())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if rec.State != StateDone {
		writeError(w, http.StatusConflict, "job %s has no report (state %s)", id, rec.State)
		return
	}
	data, err := s.store.ReportBytes(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading report: %v", err)
		return
	}
	// Serve the stored file verbatim: the response body is byte-identical
	// to the report a direct bankaware.Runner run would have written.
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	rec, ok = s.Cancel(id)
	if !ok {
		writeError(w, http.StatusConflict, "job %s is %s, not cancellable", id, rec.State)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}
	jb := s.runtime(id)
	if jb == nil {
		// The job reached a terminal state under a previous daemon; there is
		// no live stream, only the final state.
		writeSSE(w, event{ID: 1, Type: EventState, Data: mustJSON(stateEvent{State: rec.State, Detail: rec.Error})})
		fl.Flush()
		return
	}
	for {
		evs, more := jb.hub.next(after, r.Context().Done())
		for _, ev := range evs {
			writeSSE(w, ev)
			after = ev.ID
		}
		fl.Flush()
		if !more || r.Context().Err() != nil {
			return
		}
	}
}

// writeSSE renders one frame in the text/event-stream format.
func writeSSE(w http.ResponseWriter, ev event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte("{}")
	}
	return data
}

func (s *Service) handleDiff(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		writeError(w, http.StatusBadRequest, "diff needs ?a=<job>&b=<job>")
		return
	}
	ra, err := s.readReport(a)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	rb, err := s.readReport(b)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	diffs := metrics.Diff(ra, rb)
	if diffs == nil {
		diffs = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"a": a, "b": b, "identical": len(diffs) == 0, "differences": diffs,
	})
}

func (s *Service) readReport(id string) (*metrics.Report, error) {
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("no job %q", id)
	}
	if rec.State != StateDone {
		return nil, fmt.Errorf("job %s has no report (state %s)", id, rec.State)
	}
	f, err := os.Open(s.store.ReportPath(id))
	if err != nil {
		return nil, fmt.Errorf("reading report for %s: %w", id, err)
	}
	defer f.Close()
	return metrics.ReadReport(f)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	s.mu.Lock()
	running := len(s.running)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"queued":  s.queue.depth(),
		"running": running,
	})
}
