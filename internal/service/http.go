package service

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"bankaware/internal/experiments"
	"bankaware/internal/metrics"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/jobs              submit a job spec
//	         202 JobRecord      new job, durably queued (group commit)
//	         200 JobRecord      duplicate: an existing job already serves
//	                            this submission (in-flight coalesce or
//	                            content-addressed cache hit on its report)
//	         400                malformed or invalid spec
//	         429                queue full (backpressure; nothing stored)
//	         503                draining (shutdown; nothing stored)
//	         500                store/commit failure
//	     The Idempotency-Key request header overrides spec-hash dedup:
//	     submissions dedupe on the key instead of the spec, so identical
//	     specs under different keys run separately and a retry under the
//	     same key returns the same job. Every 200/202 response carries
//	     X-Bankaware-Spec-Hash (the canonical spec hash) and
//	     X-Bankaware-Cache: hit|miss (hit = no new job was created).
//	GET  /v1/jobs              list jobs -> 200
//	     Bare: the full [JobRecord] list in submission order. With any of
//	     state= (queued|running|done|failed|canceled), limit= (1..1000,
//	     default 100) or page= (opaque token), a page envelope instead:
//	     {"jobs":[...], "nextPage":"..."} — nextPage absent on the last
//	     page. 400 on an unknown state or malformed token.
//	GET  /v1/jobs/{id}         one job -> 200 JobRecord; 404 unknown
//	GET  /v1/jobs/{id}/report  finished report
//	         200                stored bytes, verbatim; ETag header is the
//	                            report's content hash
//	         304                If-None-Match matched the ETag (no body)
//	         404                unknown job
//	         409                job not done yet
//	         503 + Retry-After  stored report failed integrity verification:
//	                            it was quarantined and the job re-queued to
//	                            recompute it; the body carries a
//	                            machine-readable {"reason":"report-corrupt"}
//	GET  /v1/jobs/{id}/proof   ledger inclusion proof for the stored report
//	                           -> 200 ledger.Proof; 404 unknown; 409 no
//	                           report entry (job not done yet)
//	POST /v1/scrub             run one integrity scrub pass now
//	                           -> 200 ScrubStats
//	GET  /v1/jobs/{id}/events  live SSE stream (Last-Event-ID replay)
//	POST /v1/jobs/{id}/cancel  cancel -> 200 JobRecord; 404 unknown;
//	                           409 already terminal
//	GET  /v1/diff?a=ID&b=ID    compare two stored reports
//	                           -> 200 {identical, differences}; 400 missing
//	                           params; 404 either job or report missing
//	GET  /healthz              liveness + drain state -> 200
//	/debug/...                 pprof, expvar, service metrics
//
// Coordinator-mode daemons additionally serve the distributed work
// protocol (all 404/409 with ErrNotCoordinator elsewhere):
//
//	POST /v1/work/lease        worker pulls one shard
//	         200 ShardGrant     a shard lease (spec, unit range, token, TTL)
//	         204                no work available, poll again
//	POST /v1/work/renew        extend a held lease -> 204; 409 lease lost
//	POST /v1/work/fail         release a lease after an error -> 204;
//	                           409 lease lost (already expired/stolen)
//	POST /v1/work/complete     upload a shard's unit results -> 204
//	                           (idempotent); 404 job not distributing;
//	                           409 unit count does not match the shard
//	GET  /v1/jobs/{id}/shards  live shard table -> 200 [ShardStatus];
//	                           404 job not currently distributing
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/proof", s.handleProof)
	mux.HandleFunc("POST /v1/scrub", s.handleScrub)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/shards", s.handleShards)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /v1/work/lease", s.handleWorkLease)
	mux.HandleFunc("POST /v1/work/renew", s.handleWorkRenew)
	mux.HandleFunc("POST /v1/work/fail", s.handleWorkFail)
	mux.HandleFunc("POST /v1/work/complete", s.handleWorkComplete)
	mux.HandleFunc("GET /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("/debug/", metrics.DebugMux(s.reg))
	return mux
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits {"error": ...} with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		// 422 for specs that decoded cleanly but describe an impossible
		// job (e.g. an unknown fidelity); 400 for malformed bodies.
		var verr *ValidationError
		if errors.As(err, &verr) {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rec, hit, err := s.SubmitDedup(*spec, r.Header.Get("Idempotency-Key"))
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
	case hit:
		w.Header().Set("X-Bankaware-Spec-Hash", rec.SpecHash)
		w.Header().Set("X-Bankaware-Cache", "hit")
		writeJSON(w, http.StatusOK, rec)
	default:
		w.Header().Set("X-Bankaware-Spec-Hash", rec.SpecHash)
		w.Header().Set("X-Bankaware-Cache", "miss")
		writeJSON(w, http.StatusAccepted, rec)
	}
}

// listPage is the paginated envelope of GET /v1/jobs.
type listPage struct {
	Jobs []JobRecord `json:"jobs"`
	// NextPage is the opaque cursor of the page after this one; absent on
	// the last page.
	NextPage string `json:"nextPage,omitempty"`
}

// pageTokenPrefix versions the opaque list cursor.
const pageTokenPrefix = "v1:"

func encodePageToken(lastSeq int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(fmt.Sprintf("%s%d", pageTokenPrefix, lastSeq)))
}

func decodePageToken(tok string) (afterSeq int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil || !strings.HasPrefix(string(raw), pageTokenPrefix) {
		return 0, fmt.Errorf("malformed page token")
	}
	n, err := strconv.Atoi(strings.TrimPrefix(string(raw), pageTokenPrefix))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("malformed page token")
	}
	return n, nil
}

// maxListLimit caps one list page; defaultListLimit applies when paging
// parameters are present but limit is not.
const (
	maxListLimit     = 1000
	defaultListLimit = 100
)

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state, limitStr, page := q.Get("state"), q.Get("limit"), q.Get("page")
	if state == "" && limitStr == "" && page == "" {
		// The original unpaginated shape, kept for scripts.
		writeJSON(w, http.StatusOK, s.store.Jobs())
		return
	}
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		writeError(w, http.StatusBadRequest, "unknown state %q", state)
		return
	}
	limit := defaultListLimit
	if limitStr != "" {
		n, err := strconv.Atoi(limitStr)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		limit = n
	}
	afterSeq := 0
	if page != "" {
		var err error
		if afterSeq, err = decodePageToken(page); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	recs, lastSeq := s.store.JobsPage(state, afterSeq, limit)
	out := listPage{Jobs: recs}
	if out.Jobs == nil {
		out.Jobs = []JobRecord{}
	}
	if len(recs) == limit {
		out.NextPage = encodePageToken(lastSeq)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if rec.State != StateDone {
		writeError(w, http.StatusConflict, "job %s has no report (state %s)", id, rec.State)
		return
	}
	etag, err := s.store.ReportETag(id)
	if err != nil {
		s.reportReadError(w, id, err)
		return
	}
	w.Header().Set("ETag", etag)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := s.store.ReportBytes(id)
	if err != nil {
		s.reportReadError(w, id, err)
		return
	}
	// Serve the stored file verbatim: the response body is byte-identical
	// to the report a direct bankaware.Runner run would have written.
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// reportReadError maps a report read failure onto its HTTP response. A
// verification failure (the stored bytes no longer hash to what the ledger
// and record witnessed) is a 503 with Retry-After, not a 500: the store
// already quarantined the file, this handler re-queues the job, and the
// deterministic re-run will serve identical bytes shortly — the client
// should simply come back.
func (s *Service) reportReadError(w http.ResponseWriter, id string, err error) {
	if !errors.Is(err, ErrCorrupt) {
		writeError(w, http.StatusInternalServerError, "reading report: %v", err)
		return
	}
	requeued := s.RequeueCorrupt(id)
	w.Header().Set("Retry-After", "5")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":    err.Error(),
		"reason":   "report-corrupt",
		"requeued": requeued,
	})
}

// handleProof serves the ledger inclusion proof of a finished job's stored
// report: the ledger entry witnessing the report's content hash, the audit
// path, and the tree root. A client verifies end to end by hashing the
// fetched report bytes and checking them through the proof (bankawared
// verify / report -verify).
func (s *Service) handleProof(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if rec.State != StateDone {
		writeError(w, http.StatusConflict, "job %s has no report (state %s)", id, rec.State)
		return
	}
	led := s.store.Ledger()
	e, ok := led.LatestReport(id)
	if !ok {
		writeError(w, http.StatusConflict, "ledger holds no report entry for job %s", id)
		return
	}
	proof, err := led.Prove(e.Index)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "building proof: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, proof)
}

func (s *Service) handleScrub(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Scrub())
}

// etagMatches implements If-None-Match for the strong ETags the report
// endpoint serves: a comma-separated candidate list, "*" matching any.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		// Reports never change once written, so a weak comparison of the
		// same tag is equivalent to a strong one.
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	rec, ok = s.Cancel(id)
	if !ok {
		writeError(w, http.StatusConflict, "job %s is %s, not cancellable", id, rec.State)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}
	jb := s.runtime(id)
	if jb == nil {
		// The job reached a terminal state under a previous daemon; there is
		// no live stream, only the final state.
		writeSSE(w, event{ID: 1, Type: EventState, Data: mustJSON(stateEvent{State: rec.State, Detail: rec.Error})})
		fl.Flush()
		return
	}
	for {
		evs, more := jb.hub.next(after, r.Context().Done())
		for _, ev := range evs {
			writeSSE(w, ev)
			after = ev.ID
		}
		fl.Flush()
		if !more || r.Context().Err() != nil {
			return
		}
	}
}

// writeSSE renders one frame in the text/event-stream format.
func writeSSE(w http.ResponseWriter, ev event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte("{}")
	}
	return data
}

func (s *Service) handleDiff(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		writeError(w, http.StatusBadRequest, "diff needs ?a=<job>&b=<job>")
		return
	}
	ra, err := s.readReport(a)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	rb, err := s.readReport(b)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	diffs := metrics.Diff(ra, rb)
	if diffs == nil {
		diffs = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"a": a, "b": b, "identical": len(diffs) == 0, "differences": diffs,
	})
}

func (s *Service) readReport(id string) (*metrics.Report, error) {
	rec, ok := s.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("no job %q", id)
	}
	if rec.State != StateDone {
		return nil, fmt.Errorf("job %s has no report (state %s)", id, rec.State)
	}
	f, err := os.Open(s.store.ReportPath(id))
	if err != nil {
		return nil, fmt.Errorf("reading report for %s: %w", id, err)
	}
	defer f.Close()
	return metrics.ReadReport(f)
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	s.mu.Lock()
	running := len(s.running)
	last := s.lastScrub
	s.mu.Unlock()
	led := s.store.Ledger()
	out := map[string]any{
		"status":      status,
		"queued":      s.queue.depth(),
		"running":     running,
		"ledger_root": led.Root(),
		"ledger_len":  led.Len(),
		"fidelities":  experiments.Fidelities(),
	}
	if last != nil {
		out["last_scrub"] = last
	}
	writeJSON(w, http.StatusOK, out)
}

// workError maps a work-protocol error onto its HTTP status.
func workError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotCoordinator):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrUnknownShard):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrUnknownLease), errors.Is(err, ErrBadUpload):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrCorruptUpload):
		// 422: the request was well-formed but its payload is damaged; the
		// worker must not retry the same buffer (the shard re-leased).
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Service) handleWorkLease(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeLeaseRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	grant, ok, err := s.Lease(req.Worker)
	switch {
	case err != nil:
		workError(w, err)
	case !ok:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, grant)
	}
}

func (s *Service) handleWorkRenew(w http.ResponseWriter, r *http.Request) {
	ack, err := DecodeShardAck(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.Renew(ack); err != nil {
		workError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleWorkFail(w http.ResponseWriter, r *http.Request) {
	ack, err := DecodeShardAck(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.FailShard(ack); err != nil {
		workError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleWorkComplete(w http.ResponseWriter, r *http.Request) {
	upload, err := DecodeShardUpload(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.CompleteShard(upload); err != nil {
		workError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleShards(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	statuses, ok := s.ShardStatuses(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job %q is not currently distributing", id)
		return
	}
	writeJSON(w, http.StatusOK, statuses)
}
