package service

import (
	"bytes"
	"strings"
	"testing"
)

func TestDecodeJobSpecAccepts(t *testing.T) {
	cases := []string{
		`{"kind":"set","set":{"set":1}}`,
		`{"kind":"set","set":{"set":8,"scale":"full","instructions":1000,"epochCycles":200000}}`,
		`{"kind":"set","priority":3,"workers":2,"timeoutMs":60000,"seed":7,"observe":true,` +
			`"set":{"workloads":["apsi","galgel","gcc","mgrid","applu","mesa","facerec","gzip"]}}`,
		`{"kind":"experiments","experiments":{}}`,
		`{"kind":"experiments","label":"nightly","experiments":{"scale":"model","instructions":50000}}`,
		`{"kind":"montecarlo","montecarlo":{}}`,
		`{"kind":"montecarlo","seed":2009,"montecarlo":{"trials":1000}}`,
		`{"kind":"set","fidelity":"fast","set":{"set":1}}`,
		`{"kind":"set","fidelity":"detailed","set":{"set":1}}`,
		`{"kind":"experiments","fidelity":"fast","experiments":{}}`,
		`{"kind":"montecarlo","fidelity":"detailed","montecarlo":{}}`,
	}
	for _, body := range cases {
		if _, err := DecodeJobSpec(strings.NewReader(body)); err != nil {
			t.Errorf("DecodeJobSpec(%s): %v", body, err)
		}
	}
}

func TestDecodeJobSpecRejects(t *testing.T) {
	cases := []struct{ name, body string }{
		{"empty", ``},
		{"not json", `hello`},
		{"no kind", `{}`},
		{"unknown kind", `{"kind":"turbo","montecarlo":{}}`},
		{"missing subspec", `{"kind":"set"}`},
		{"wrong subspec", `{"kind":"set","montecarlo":{}}`},
		{"two subspecs", `{"kind":"set","set":{"set":1},"montecarlo":{}}`},
		{"unknown field", `{"kind":"set","set":{"set":1},"bogus":true}`},
		{"trailing data", `{"kind":"set","set":{"set":1}} {"kind":"set"}`},
		{"set out of range", `{"kind":"set","set":{"set":9}}`},
		{"set and workloads", `{"kind":"set","set":{"set":1,"workloads":["gzip"]}}`},
		{"too few workloads", `{"kind":"set","set":{"workloads":["gzip"]}}`},
		{"unknown workload", `{"kind":"set","set":{"workloads":["a","b","c","d","e","f","g","h"]}}`},
		{"bad scale", `{"kind":"set","set":{"set":1,"scale":"galactic"}}`},
		{"negative epoch", `{"kind":"set","set":{"set":1,"epochCycles":-5}}`},
		{"negative timeout", `{"kind":"montecarlo","timeoutMs":-1,"montecarlo":{}}`},
		{"negative workers", `{"kind":"montecarlo","workers":-1,"montecarlo":{}}`},
		{"negative trials", `{"kind":"montecarlo","montecarlo":{"trials":-1}}`},
		{"huge trials", `{"kind":"montecarlo","montecarlo":{"trials":2000000}}`},
		{"unknown fidelity", `{"kind":"set","fidelity":"turbo","set":{"set":1}}`},
		{"montecarlo fast", `{"kind":"montecarlo","fidelity":"fast","montecarlo":{}}`},
		{"oversized", `{"kind":"montecarlo","label":"` + strings.Repeat("x", maxSpecBytes) + `","montecarlo":{}}`},
	}
	for _, tc := range cases {
		if _, err := DecodeJobSpec(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: DecodeJobSpec accepted %.80q", tc.name, tc.body)
		}
	}
}

// FuzzJobSpecDecode asserts the submission decoder's contract on arbitrary
// input: it never panics, and anything it accepts is a fully valid spec (so
// a malformed POST body is always a clean 400, never a half-built job).
func FuzzJobSpecDecode(f *testing.F) {
	f.Add([]byte(`{"kind":"set","set":{"set":1,"epochCycles":200000,"instructions":300000}}`))
	f.Add([]byte(`{"kind":"experiments","experiments":{"scale":"full"}}`))
	f.Add([]byte(`{"kind":"montecarlo","priority":9,"seed":2009,"montecarlo":{"trials":50}}`))
	f.Add([]byte(`{"kind":"set","set":{"workloads":["apsi","galgel","gcc","mgrid","applu","mesa","facerec","gzip"]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"set","montecarlo":{}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"kind"`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(bytes.NewReader(data))
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatal("nil spec with nil error")
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid spec %+v: %v", spec, err)
		}
	})
}
