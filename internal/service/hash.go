package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"bankaware/internal/experiments"
	"bankaware/internal/montecarlo"
)

// specHashVersion versions the canonical encoding below. Any change to the
// canonicalization rules must bump it: stored reports stay valid, but old
// and new daemons then hash the same spec differently, and mixing them over
// one store would split the cache instead of corrupting it.
const specHashVersion = "bankaware.spec-hash/v1"

// canonicalSpec is the hashed projection of a JobSpec: exactly the fields
// that determine the report bytes, after defaulting. Execution knobs
// (Label, Priority, Workers, SimWorkers, TimeoutMS) are deliberately absent — the
// simulator's determinism contract guarantees they shape when and how fast
// a job runs, never what it computes — so two submissions that differ only
// in those knobs are the same cache entry.
//
// Canonicalization is conservative: a default is folded into its explicit
// value only where run.go provably applies that value (scale "" is "model"
// everywhere; a set job's zero instruction budget is the model default; a
// Monte Carlo's zero trials/seed are the paper's 1000/2009). Everything
// else hashes as submitted — a missed fold costs a cache miss, a wrong fold
// would serve the wrong report.
type canonicalSpec struct {
	Kind    string `json:"kind"`
	Seed    uint64 `json:"seed"`
	Observe bool   `json:"observe"`

	Set         *canonicalSet         `json:"set,omitempty"`
	Experiments *canonicalExperiments `json:"experiments,omitempty"`
	MonteCarlo  *canonicalMonteCarlo  `json:"montecarlo,omitempty"`
}

type canonicalSet struct {
	Set          int      `json:"set"`
	Workloads    []string `json:"workloads,omitempty"`
	Scale        string   `json:"scale"`
	Instructions uint64   `json:"instructions"`
	EpochCycles  int64    `json:"epochCycles"`
	// Fidelity is present only for the fast engine: "" and "detailed"
	// fold to the omitted field, so detailed specs keep their
	// pre-fidelity hashes while fast specs land on distinct entries.
	Fidelity string `json:"fidelity,omitempty"`
}

type canonicalExperiments struct {
	Scale        string `json:"scale"`
	Instructions uint64 `json:"instructions"`
	Fidelity     string `json:"fidelity,omitempty"`
}

type canonicalMonteCarlo struct {
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
}

func canonicalScale(scale string) string {
	if scale == "" {
		return "model"
	}
	return scale
}

// canonicalFidelity folds "" and "detailed" to the empty string (omitted
// from the canonical JSON — the pre-fidelity encoding) and keeps "fast".
func canonicalFidelity(fidelity string) string {
	if fidelity == "fast" {
		return fidelity
	}
	return ""
}

// canonicalize projects a validated spec onto its canonical form.
func canonicalize(spec JobSpec) canonicalSpec {
	c := canonicalSpec{Kind: spec.Kind, Seed: spec.Seed, Observe: spec.Observe}
	switch {
	case spec.Set != nil:
		sub := canonicalSet{
			Set:          spec.Set.Set,
			Scale:        canonicalScale(spec.Set.Scale),
			Instructions: spec.Set.Instructions,
			EpochCycles:  spec.Set.EpochCycles,
			Fidelity:     canonicalFidelity(spec.Fidelity),
		}
		if sub.Instructions == 0 {
			// Mirror runSet: a zero budget always selects the model-scale
			// default, regardless of the chosen scale.
			sub.Instructions = experiments.ScaleModel.DefaultInstructions()
		}
		if sub.Set == 0 {
			// A set number and an explicit workload list are not folded into
			// each other: the report labels the two differently, so they are
			// different byte streams even when the workloads coincide.
			sub.Workloads = append([]string(nil), spec.Set.Workloads...)
		}
		c.Set = &sub
	case spec.Experiments != nil:
		c.Experiments = &canonicalExperiments{
			Scale:        canonicalScale(spec.Experiments.Scale),
			Instructions: spec.Experiments.Instructions,
			Fidelity:     canonicalFidelity(spec.Fidelity),
		}
	case spec.MonteCarlo != nil:
		def := montecarlo.DefaultConfig()
		sub := canonicalMonteCarlo{Trials: spec.MonteCarlo.Trials, Seed: spec.Seed}
		if sub.Trials == 0 {
			sub.Trials = def.Trials
		}
		if sub.Seed == 0 {
			sub.Seed = def.Seed
		}
		c.MonteCarlo = &sub
		// The campaign seed lives in the sub-spec after defaulting; zero the
		// top-level copy so "seed omitted" and "seed": 2009 hash equal.
		c.Seed = 0
	}
	return c
}

// SpecHash returns the canonical content hash of a validated spec: the
// hex-encoded SHA-256 of the versioned canonical JSON encoding. Two specs
// with equal hashes produce byte-identical reports; the converse is not
// guaranteed (canonicalization is conservative), only harmless.
func SpecHash(spec JobSpec) string {
	data, err := json.Marshal(canonicalize(spec))
	if err != nil {
		// canonicalSpec is plain data; Marshal cannot fail on it.
		panic("service: encoding canonical spec: " + err.Error())
	}
	h := sha256.New()
	h.Write([]byte(specHashVersion))
	h.Write([]byte{':'})
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// dedupKey returns the intake dedup-index key for a submission: the
// Idempotency-Key when the client sent one (overriding spec-hash dedup),
// the spec hash otherwise. The two live in distinct namespaces so a key
// can never collide with a hash.
func dedupKey(specHash, idemKey string) string {
	if idemKey != "" {
		return "idem:" + idemKey
	}
	return "spec:" + specHash
}
