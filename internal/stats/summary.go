package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice. All
// values must be positive; non-positive values make the result NaN, matching
// the mathematical definition rather than hiding bad inputs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Ratio returns num/den, or 0 when den is 0. Relative-metric tables divide
// by baseline counts that can legitimately be zero in tiny test runs.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// PctReduction returns the percentage reduction of value relative to
// baseline: 100 * (1 - value/baseline). Zero baseline yields 0.
func PctReduction(value, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (1 - value/baseline)
}

// FormatPct renders a fraction (0.27) as a fixed-width percentage ("27.0%").
func FormatPct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}
