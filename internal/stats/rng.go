// Package stats provides the small numeric substrate shared by every
// experiment harness in this repository: a deterministic, splittable random
// number generator, histogram types, and summary statistics (mean, geometric
// mean, percentiles).
//
// Determinism matters here: the paper's Monte Carlo experiment (Fig. 7) and
// the synthetic workload generators must be exactly reproducible from a seed
// so that the tables and figures regenerate identically across runs and
// machines. All randomness in the repository flows through stats.RNG.
package stats

import "math/rand/v2"

// RNG is a deterministic pseudo-random source. It wraps the stdlib PCG
// generator and adds the derivation helpers the simulators need (splitting a
// stream per core, bounded draws, probability tests).
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded from the two seed words. Equal seeds
// yield identical streams.
func NewRNG(seed1, seed2 uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed1, seed2))}
}

// Split derives an independent generator from this one, identified by id.
// Each (parent seed, id) pair yields a fixed stream, so per-core or
// per-experiment sub-streams are reproducible regardless of draw ordering in
// the parent.
func (r *RNG) Split(id uint64) *RNG {
	// Mix the id through two draws so adjacent ids decorrelate.
	a := r.src.Uint64() ^ (id * 0x9e3779b97f4a7c15)
	b := r.src.Uint64() ^ (id*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
	return NewRNG(a, b)
}

// SplitN derives n independent generators, one per job of a parallel
// fan-out. The derivation consumes the parent serially before any job runs,
// so handing rngs[i] to worker i keeps results bit-identical regardless of
// worker count or completion order.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split(uint64(i))
	}
	return out
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Geometric returns a draw from a geometric distribution with success
// probability p, i.e. the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p). Used to model bursty gaps between
// memory instructions. p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("stats: Geometric requires p in (0,1]")
	}
	// Inverse-CDF sampling, capped to keep pathological draws bounded.
	n := 0
	for !r.Bool(p) {
		n++
		if n >= 1<<20 {
			break
		}
	}
	return n
}
