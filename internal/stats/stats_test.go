package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(1, 2)
	b := NewRNG(1, 2)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSplitN(t *testing.T) {
	a := NewRNG(11, 13).SplitN(4)
	b := NewRNG(11, 13).SplitN(4)
	for i := range a {
		for d := 0; d < 50; d++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("SplitN stream %d diverged at draw %d", i, d)
			}
		}
	}
	c := NewRNG(11, 13).SplitN(2)
	if c[0].Uint64() == c[1].Uint64() {
		t.Fatal("adjacent SplitN streams start identically")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	// Splitting with different ids must give different streams; splitting a
	// re-seeded parent with the same id must give the same stream.
	p1 := NewRNG(7, 9)
	p2 := NewRNG(7, 9)
	s1 := p1.Split(3)
	s2 := p2.Split(3)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("same-id splits diverged at draw %d", i)
		}
	}
	p3 := NewRNG(7, 9)
	s3 := p3.Split(4)
	s4 := NewRNG(7, 9).Split(3)
	same := true
	for i := 0; i < 16; i++ {
		if s3.Uint64() != s4.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different-id splits produced identical prefixes")
	}
}

func TestRNGIntNBounds(t *testing.T) {
	r := NewRNG(42, 42)
	for i := 0; i < 10000; i++ {
		v := r.IntN(17)
		if v < 0 || v >= 17 {
			t.Fatalf("IntN(17) = %d out of range", v)
		}
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(1, 1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolFrequency(t *testing.T) {
	r := NewRNG(5, 5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency = %.4f, want ~0.25", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(11, 13)
	const p = 0.2
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 4.0
	if math.Abs(mean-want) > 0.15 {
		t.Fatalf("Geometric(%.2f) mean = %.3f, want ~%.3f", p, mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := NewRNG(1, 2)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4, 16})
	if math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	// AM-GM inequality as a property test over positive inputs.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // ensure positive
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdDev(t *testing.T) {
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Fatal("StdDev of singleton != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint8, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndPctReduction(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Fatal("Ratio(3,4) != 0.75")
	}
	if got := PctReduction(30, 100); got != 70 {
		t.Fatalf("PctReduction = %v, want 70", got)
	}
	if PctReduction(5, 0) != 0 {
		t.Fatal("PctReduction zero baseline should be 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Counter = %d, want 5", c.Value())
	}
}

func TestHistBasics(t *testing.T) {
	h := NewHist(4)
	for _, v := range []int{0, 1, 1, 3, 7, -2} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if h.Bucket(1) != 2 {
		t.Fatalf("Bucket(1) = %d, want 2", h.Bucket(1))
	}
	if h.Bucket(0) != 2 { // includes clamped -2
		t.Fatalf("Bucket(0) = %d, want 2", h.Bucket(0))
	}
	if h.Overflow() != 1 {
		t.Fatalf("Overflow = %d, want 1", h.Overflow())
	}
	if h.Bucket(-1) != 0 {
		t.Fatal("Bucket(-1) should be 0")
	}
	if h.Bucket(99) != h.Overflow() {
		t.Fatal("out-of-range Bucket should return overflow")
	}
	wantMean := float64(0+1+1+3+7+0) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", h.Mean(), wantMean)
	}
	h.Reset()
	if h.Count() != 0 || h.Overflow() != 0 || h.Bucket(1) != 0 {
		t.Fatal("Reset did not clear histogram")
	}
}

func TestHistCountInvariant(t *testing.T) {
	// Property: count equals the sum of all buckets plus overflow.
	f := func(vals []uint8) bool {
		h := NewHist(8)
		for _, v := range vals {
			h.Observe(int(v))
		}
		var sum uint64
		for i := 0; i < 8; i++ {
			sum += h.Bucket(i)
		}
		sum += h.Overflow()
		return sum == h.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistString(t *testing.T) {
	h := NewHist(2)
	h.Observe(0)
	h.Observe(5)
	s := h.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestNewHistClampsSize(t *testing.T) {
	h := NewHist(0)
	h.Observe(0)
	if h.Count() != 1 {
		t.Fatal("NewHist(0) should still produce a usable histogram")
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.271); got != "27.1%" {
		t.Fatalf("FormatPct = %q", got)
	}
}
