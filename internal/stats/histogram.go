package stats

import (
	"fmt"
	"strings"
)

// Counter is a monotonically increasing event counter. It exists so that the
// simulator's metric fields document themselves and so helper methods
// (Add, Ratio) live in one place.
type Counter uint64

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Value returns the count as a uint64.
func (c Counter) Value() uint64 { return uint64(c) }

// Hist is a fixed-width bucketed histogram of non-negative integer samples.
// Bucket i counts samples equal to i; samples >= len(buckets) accumulate in
// the overflow bucket. The MSA profiler uses a specialised variant; Hist is
// for general instrumentation (queue depths, hop counts, burst lengths).
type Hist struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
}

// NewHist returns a histogram with n exact buckets plus an overflow bucket.
func NewHist(n int) *Hist {
	if n < 1 {
		n = 1
	}
	return &Hist{buckets: make([]uint64, n)}
}

// Observe records one sample of value v (v < 0 is clamped to 0).
func (h *Hist) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v < len(h.buckets) {
		h.buckets[v]++
	} else {
		h.overflow++
	}
	h.count++
	h.sum += uint64(v)
}

// Count returns the total number of samples observed.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the mean sample value.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the count of samples exactly equal to i, or the overflow
// count when i is out of range on the high side.
func (h *Hist) Bucket(i int) uint64 {
	if i < 0 {
		return 0
	}
	if i >= len(h.buckets) {
		return h.overflow
	}
	return h.buckets[i]
}

// Overflow returns the count of samples >= the number of exact buckets.
func (h *Hist) Overflow() uint64 { return h.overflow }

// String renders a compact textual histogram for logs and CLI output.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist n=%d mean=%.2f [", h.count, h.Mean())
	for i, v := range h.buckets {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, " |ovf %d]", h.overflow)
	return b.String()
}

// Reset zeroes all counts, keeping the bucket layout.
func (h *Hist) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.overflow, h.count, h.sum = 0, 0, 0
}
