package nuca

import (
	"testing"
	"testing/quick"

	"bankaware/internal/stats"
	"bankaware/internal/trace"
)

func TestAggregateSingleResidencyProperty(t *testing.T) {
	// Property: under every aggregation scheme and arbitrary traffic, a
	// block is resident in at most one bank of the aggregate (the schemes
	// move lines but never duplicate them).
	run := func(seed uint64, schemeRaw uint8) bool {
		scheme := Scheme(schemeRaw % 4)
		banks := mkBanks(3, 16, 4)
		agg := MustAggregate(scheme, banks, 0)
		rng := stats.NewRNG(seed, seed^0x1234)
		var touched []trace.Addr
		for i := 0; i < 4000; i++ {
			a := addr(uint64(rng.IntN(300)))
			agg.Access(a, rng.Bool(0.3))
			if i%211 == 0 {
				touched = append(touched, a)
			}
		}
		for _, a := range touched {
			n := 0
			for _, b := range banks {
				if b.Probe(a) {
					n++
				}
			}
			if n > 1 {
				t.Fatalf("scheme %v: block %#x resident in %d banks", scheme, a, n)
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateStatsConservation(t *testing.T) {
	// hits + misses == accesses for every scheme under random traffic.
	for _, scheme := range []Scheme{Cascade, AddressHash, Parallel, TwoLevel} {
		agg := MustAggregate(scheme, mkBanks(4, 8, 4), 0)
		rng := stats.NewRNG(9, uint64(scheme))
		for i := 0; i < 5000; i++ {
			agg.Access(addr(uint64(rng.IntN(400))), false)
		}
		s := agg.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("%v: %d hits + %d misses != %d accesses", scheme, s.Hits, s.Misses, s.Accesses)
		}
	}
}

func TestAggregateHitDeterminism(t *testing.T) {
	// Identical traffic through identical aggregates yields identical
	// statistics for every scheme.
	for _, scheme := range []Scheme{Cascade, AddressHash, Parallel, TwoLevel} {
		runOnce := func() AggregateStats {
			agg := MustAggregate(scheme, mkBanks(3, 8, 4), 0)
			rng := stats.NewRNG(21, 22)
			for i := 0; i < 3000; i++ {
				agg.Access(addr(uint64(rng.IntN(200))), rng.Bool(0.25))
			}
			return agg.Stats()
		}
		if runOnce() != runOnce() {
			t.Fatalf("%v nondeterministic", scheme)
		}
	}
}
