package nuca

import (
	"testing"

	"bankaware/internal/cache"
	"bankaware/internal/stats"
	"bankaware/internal/trace"
)

func mkBanks(n, sets, ways int) []*cache.Bank {
	banks := make([]*cache.Bank, n)
	for i := range banks {
		banks[i] = cache.MustBank(cache.Config{Sets: sets, Ways: ways})
	}
	return banks
}

func addr(blk uint64) trace.Addr { return trace.Addr(blk << trace.BlockBits) }

func TestNewAggregateValidation(t *testing.T) {
	if _, err := NewAggregate(Parallel, nil, 0); err == nil {
		t.Fatal("empty bank list accepted")
	}
	if _, err := NewAggregate(Cascade, mkBanks(1, 4, 2), 0); err == nil {
		t.Fatal("single-bank cascade accepted")
	}
	if _, err := NewAggregate(TwoLevel, mkBanks(1, 4, 2), 0); err == nil {
		t.Fatal("single-bank two-level accepted")
	}
	uneven := []*cache.Bank{
		cache.MustBank(cache.Config{Sets: 4, Ways: 2}),
		cache.MustBank(cache.Config{Sets: 8, Ways: 2}),
	}
	if _, err := NewAggregate(AddressHash, uneven, 0); err == nil {
		t.Fatal("uneven AddressHash accepted")
	}
	if _, err := NewAggregate(Parallel, uneven, 0); err != nil {
		t.Fatalf("Parallel should allow uneven banks: %v", err)
	}
}

func TestMustAggregatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAggregate(Cascade, mkBanks(1, 4, 2), 0)
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		Cascade: "Cascade", AddressHash: "AddressHash",
		Parallel: "Parallel", TwoLevel: "TwoLevel", Scheme(9): "Scheme(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestAddressHashDeterministicPlacement(t *testing.T) {
	a := MustAggregate(AddressHash, mkBanks(3, 8, 2), 0)
	_, b1 := a.Access(addr(12345), false)
	hit, b2 := a.Access(addr(12345), false)
	if !hit || b1 != b2 {
		t.Fatalf("rehash moved block: %d vs %d (hit=%v)", b1, b2, hit)
	}
	if a.Stats().Migrations != 0 {
		t.Fatal("AddressHash migrated")
	}
}

func TestAddressHashBalance(t *testing.T) {
	a := MustAggregate(AddressHash, mkBanks(3, 64, 8), 0)
	counts := make([]int, 3)
	for i := uint64(0); i < 3000; i++ {
		_, b := a.Access(addr(i), false)
		counts[b]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bank %d got %d of 3000 accesses (imbalanced hash)", i, c)
		}
	}
}

func TestParallelHitsAnywhere(t *testing.T) {
	a := MustAggregate(Parallel, mkBanks(3, 4, 2), 0)
	// Fill round-robin: consecutive misses land in different banks.
	seen := map[int]bool{}
	for i := uint64(0); i < 3; i++ {
		_, b := a.Access(addr(i*64), false)
		seen[b] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin used %d banks, want 3", len(seen))
	}
	// All three blocks hit, wherever they live.
	for i := uint64(0); i < 3; i++ {
		hit, _ := a.Access(addr(i*64), false)
		if !hit {
			t.Fatalf("block %d missed on re-access", i)
		}
	}
	if a.Stats().Migrations != 0 {
		t.Fatal("Parallel migrated")
	}
}

func TestParallelLookupCost(t *testing.T) {
	a := MustAggregate(Parallel, mkBanks(4, 4, 2), 0)
	a.Access(addr(1), false) // miss: probes all 4 banks
	if got := a.Stats().Lookups; got != 4 {
		t.Fatalf("miss lookups = %d, want 4", got)
	}
	h := MustAggregate(AddressHash, mkBanks(4, 4, 2), 0)
	h.Access(addr(1), false)
	if got := h.Stats().Lookups; got != 1 {
		t.Fatalf("hash lookups = %d, want 1", got)
	}
}

func TestCascadeEmulatesLRU(t *testing.T) {
	// Two 1-set x 2-way banks chained = one 4-entry LRU. Verify against a
	// reference LRU over random traffic with a small block universe.
	a := MustAggregate(Cascade, mkBanks(2, 1, 2), 0)
	var ref []trace.Addr
	rng := stats.NewRNG(8, 15)
	for i := 0; i < 5000; i++ {
		x := addr(uint64(rng.IntN(8)))
		refHit := false
		for k, v := range ref {
			if v == x {
				ref = append(ref[:k], ref[k+1:]...)
				refHit = true
				break
			}
		}
		ref = append([]trace.Addr{x}, ref...)
		if len(ref) > 4 {
			ref = ref[:4]
		}
		hit, _ := a.Access(x, false)
		if hit != refHit {
			t.Fatalf("access %d: cascade hit=%v, LRU reference=%v", i, hit, refHit)
		}
	}
}

func TestCascadePromotionToHead(t *testing.T) {
	a := MustAggregate(Cascade, mkBanks(2, 1, 1), 0)
	a.Access(addr(1), false) // head: 1
	a.Access(addr(2), false) // head: 2, tail: 1
	hit, bank := a.Access(addr(1), false)
	if !hit || bank != 1 {
		t.Fatalf("expected hit in tail bank, got hit=%v bank=%d", hit, bank)
	}
	// 1 must now be at the head; 2 demoted to the tail.
	if !a.banks[0].Probe(addr(1)) || !a.banks[1].Probe(addr(2)) {
		t.Fatal("promotion/demotion did not happen")
	}
}

func TestMigrationRateOrdering(t *testing.T) {
	// The Fig. 4 design argument: Cascade migrates far more than TwoLevel;
	// AddressHash and Parallel never migrate.
	run := func(scheme Scheme) AggregateStats {
		agg := MustAggregate(scheme, mkBanks(4, 16, 4), 0)
		g := trace.MustGenerator(trace.Spec{
			Name:     "mix",
			HitMass:  []float64{0.4, 0.2, 0.1, 0.05},
			ColdFrac: 0.25,
			MemPerKI: 100,
		}, stats.NewRNG(3, 33), trace.GeneratorConfig{BlocksPerWay: 64})
		for i := 0; i < 30000; i++ {
			agg.Access(g.Next().Access.Addr, false)
		}
		return agg.Stats()
	}
	cas := run(Cascade)
	two := run(TwoLevel)
	hash := run(AddressHash)
	par := run(Parallel)
	if hash.Migrations != 0 || par.Migrations != 0 {
		t.Fatalf("hash/parallel migrated: %d/%d", hash.Migrations, par.Migrations)
	}
	if cas.MigrationRate() <= two.MigrationRate() {
		t.Fatalf("cascade rate %.3f <= two-level rate %.3f", cas.MigrationRate(), two.MigrationRate())
	}
	if two.Migrations == 0 {
		t.Fatal("two-level should migrate on level-2 activity")
	}
	// All schemes see the same traffic; miss ratios should be in the same
	// ballpark (cascade is the LRU ideal, so it must not be worse than
	// hash by much; allow generous slack, this pins gross breakage only).
	if cas.MissRatio() > hash.MissRatio()+0.05 {
		t.Fatalf("cascade misses %.3f much worse than hash %.3f", cas.MissRatio(), hash.MissRatio())
	}
}

func TestTwoLevelPromotion(t *testing.T) {
	// 2 level-1 banks (1x1) + 1 level-2 bank (1x1).
	a := MustAggregate(TwoLevel, mkBanks(3, 1, 1), 0)
	a.Access(addr(1), false) // L1 bank 0
	a.Access(addr(2), false) // L1 bank 1
	a.Access(addr(3), false) // L1 bank 0, victim 1 -> L2
	if !a.banks[2].Probe(addr(1)) {
		t.Fatal("victim not demoted to level 2")
	}
	hit, bank := a.Access(addr(1), false)
	if !hit || bank != 2 {
		t.Fatalf("expected level-2 hit, got hit=%v bank=%d", hit, bank)
	}
	if a.banks[2].Probe(addr(1)) {
		t.Fatal("promoted block still in level 2")
	}
}

func TestAggregateStatsHelpers(t *testing.T) {
	var s AggregateStats
	if s.MissRatio() != 0 || s.MigrationRate() != 0 || s.LookupsPerAccess() != 0 {
		t.Fatal("zero stats should yield zero rates")
	}
	s = AggregateStats{Accesses: 10, Misses: 5, Migrations: 20, Lookups: 30}
	if s.MissRatio() != 0.5 || s.MigrationRate() != 2 || s.LookupsPerAccess() != 3 {
		t.Fatalf("rates wrong: %+v", s)
	}
}

func TestCascadeDirtyBlockStaysDirtyThroughMigration(t *testing.T) {
	a := MustAggregate(Cascade, mkBanks(2, 1, 1), 0)
	a.Access(addr(1), true)  // dirty at head
	a.Access(addr(2), false) // demotes 1 to tail
	a.Access(addr(1), false) // promote 1 back (still dirty), demote 2
	a.Access(addr(3), false) // demote 1 to tail again
	// Evict 1 entirely: insert 4 (head), demoting 3; 1 falls off the tail.
	a.Access(addr(4), false)
	wb := a.banks[1].Stats().Writebacks
	if wb == 0 {
		t.Fatal("dirty block lost its dirty bit across migrations")
	}
}
