// Package nuca implements the DNUCA last-level-cache substrate of the
// baseline system (Section II): sixteen 1 MB, 8-way banks — eight Local
// banks, one adjacent to each core, and eight Center banks clustered
// mid-chip — with the paper's 10-to-70-cycle access latency range, plus the
// bank-aggregation schemes of Fig. 4 (Cascade, Address Hash, Parallel and
// the limited two-level cascade) used to stitch multiple banks into one
// core's partition.
package nuca

import (
	"fmt"
	"math"
)

// Baseline geometry (Table I / Fig. 1).
const (
	NumCores     = 8
	NumBanks     = 16 // banks 0..7 Local (bank i adjacent to core i), 8..15 Center
	WaysPerBank  = 8
	BankSets     = 2048 // 1 MB / 64 B / 8 ways
	MinLatency   = 10   // cycles, core to its own Local bank
	MaxLatency   = 70   // cycles, 7 hops away (core 0 to core 7's Local bank)
	maxHops      = 7
	perHopCycles = float64(MaxLatency-MinLatency) / maxHops // 60/7 cycles per hop
)

// Kind distinguishes the two bank classes of the floorplan.
type Kind int

const (
	Local Kind = iota
	Center
)

func (k Kind) String() string {
	if k == Local {
		return "Local"
	}
	return "Center"
}

// BankKind returns the class of bank b.
func BankKind(b int) Kind {
	mustBank(b)
	if b < NumCores {
		return Local
	}
	return Center
}

// LocalBankOf returns the Local bank adjacent to core c (bank id == core id
// in this floorplan).
func LocalBankOf(core int) int {
	mustCore(core)
	return core
}

// CoreOfLocalBank returns the core adjacent to Local bank b.
func CoreOfLocalBank(b int) int {
	mustBank(b)
	if b >= NumCores {
		panic(fmt.Sprintf("nuca: bank %d is a Center bank", b))
	}
	return b
}

// centerPosition returns the floorplan x-coordinate of Center bank index j
// (0..7). The Center banks sit clustered in the middle of the chip, which
// gives them a higher average but lower variance distance to the cores than
// the Local banks — the property Section II describes.
func centerPosition(j int) float64 {
	return 2.25 + 0.5*float64(j)
}

// RouterOf returns the chain-network router (0..NumCores-1) a bank attaches
// to. Local banks share their core's router; Center banks attach to the
// nearest router on the chain.
func RouterOf(b int) int {
	mustBank(b)
	if b < NumCores {
		return b
	}
	r := int(math.Round(centerPosition(b - NumCores)))
	if r < 0 {
		r = 0
	}
	if r >= NumCores {
		r = NumCores - 1
	}
	return r
}

// Hops returns the network distance between core c and bank b: the chain
// hops to the bank's router, plus one for a Center bank's drop link.
func Hops(core, bank int) int {
	mustCore(core)
	mustBank(bank)
	d := core - RouterOf(bank)
	if d < 0 {
		d = -d
	}
	if bank >= NumCores {
		d++
	}
	if d > maxHops {
		d = maxHops
	}
	return d
}

// Latency returns the uncontended L2 access latency from core to bank:
// MinLatency for the adjacent Local bank, growing per hop to MaxLatency at
// the far end of the chip (Section II: "from 10 up to 70 cycles").
func Latency(core, bank int) int64 {
	return MinLatency + int64(math.Round(float64(Hops(core, bank))*perHopCycles))
}

// NetworkLatencyOneWay returns the one-way wire latency between core and
// bank, i.e. half of the non-bank portion of Latency. The full-system
// simulator charges it on the request and response paths separately, with
// the 10-cycle bank access in between.
func NetworkLatencyOneWay(core, bank int) int64 {
	return int64(math.Round(float64(Hops(core, bank)) * perHopCycles / 2))
}

// AdjacentCores returns the cores physically adjacent to core on the chain —
// the only cores it may share a Local bank with (allocation Rule 3).
func AdjacentCores(core int) []int {
	mustCore(core)
	switch core {
	case 0:
		return []int{1}
	case NumCores - 1:
		return []int{NumCores - 2}
	default:
		return []int{core - 1, core + 1}
	}
}

// Adjacent reports whether cores a and b are neighbours on the chain.
func Adjacent(a, b int) bool {
	mustCore(a)
	mustCore(b)
	d := a - b
	return d == 1 || d == -1
}

func mustCore(c int) {
	if c < 0 || c >= NumCores {
		panic(fmt.Sprintf("nuca: core %d outside [0,%d)", c, NumCores))
	}
}

func mustBank(b int) {
	if b < 0 || b >= NumBanks {
		panic(fmt.Sprintf("nuca: bank %d outside [0,%d)", b, NumBanks))
	}
}
