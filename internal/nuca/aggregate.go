package nuca

import (
	"fmt"

	"bankaware/internal/cache"
	"bankaware/internal/trace"
)

// Scheme selects a bank-aggregation policy (Fig. 4): how several physical
// banks are stitched into one logical partition.
type Scheme int

const (
	// Cascade chains the banks head to tail: allocations enter the head
	// bank as MRU, evictions demote down the chain, and a hit in a deeper
	// bank promotes the block back to the head. It emulates a single large
	// LRU most faithfully and can stitch arbitrary fractions of banks, but
	// every allocation ripples data through the chain — the "prohibitively
	// high" migration rate the paper measured.
	Cascade Scheme = iota
	// AddressHash statically hashes blocks across the banks. No migration,
	// but all banks must contribute equal capacity, and non-power-of-two
	// bank counts need modulo hardware.
	AddressHash
	// Parallel lets a block live in any bank: lookups probe all banks
	// (wider directory power), allocation is round-robin. Migration-free
	// like AddressHash but without the power-of-two restriction.
	Parallel
	// TwoLevel is the limited structure of Fig. 4c the paper adopts:
	// cascading depth capped at two, with the first level run as Parallel.
	// The last bank acts as the second level; evictions from the first
	// level demote into it and hits there promote back.
	TwoLevel
)

func (s Scheme) String() string {
	switch s {
	case Cascade:
		return "Cascade"
	case AddressHash:
		return "AddressHash"
	case Parallel:
		return "Parallel"
	case TwoLevel:
		return "TwoLevel"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// AggregateStats reports the cost metrics that distinguish the schemes.
type AggregateStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Migrations uint64 // inter-bank block moves (promotions + demotions)
	Lookups    uint64 // bank probes performed (directory power proxy)
}

// MissRatio returns misses/accesses.
func (s AggregateStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MigrationRate returns migrations per access.
func (s AggregateStats) MigrationRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Migrations) / float64(s.Accesses)
}

// LookupsPerAccess returns directory probes per access.
func (s AggregateStats) LookupsPerAccess() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Lookups) / float64(s.Accesses)
}

// Aggregate runs one core's partition of several banks under a scheme. It
// is the standalone harness behind the Fig. 4 comparison; the full-system
// simulator uses the same Parallel/TwoLevel semantics through its own bank
// fabric.
type Aggregate struct {
	scheme Scheme
	banks  []*cache.Bank
	core   int
	rr     int
	stats  AggregateStats
}

// NewAggregate wires banks (already configured and partitioned) into an
// aggregate for core. Cascade and TwoLevel need at least two banks;
// AddressHash requires equal bank capacities.
func NewAggregate(scheme Scheme, banks []*cache.Bank, core int) (*Aggregate, error) {
	if len(banks) == 0 {
		return nil, fmt.Errorf("nuca: aggregate needs at least one bank")
	}
	if (scheme == Cascade || scheme == TwoLevel) && len(banks) < 2 {
		return nil, fmt.Errorf("nuca: %v aggregation needs at least two banks", scheme)
	}
	if scheme == AddressHash {
		blocks := banks[0].Config().Blocks()
		for _, b := range banks[1:] {
			if b.Config().Blocks() != blocks {
				return nil, fmt.Errorf("nuca: AddressHash requires equal bank capacities")
			}
		}
	}
	return &Aggregate{scheme: scheme, banks: banks, core: core}, nil
}

// MustAggregate is NewAggregate that panics on error.
func MustAggregate(scheme Scheme, banks []*cache.Bank, core int) *Aggregate {
	a, err := NewAggregate(scheme, banks, core)
	if err != nil {
		panic(err)
	}
	return a
}

// Stats returns a snapshot of the aggregate's counters.
func (a *Aggregate) Stats() AggregateStats { return a.stats }

// Scheme returns the active aggregation policy.
func (a *Aggregate) Scheme() Scheme { return a.scheme }

// Access performs one reference, returning whether it hit anywhere in the
// aggregate and in which bank.
func (a *Aggregate) Access(addr trace.Addr, write bool) (hit bool, bank int) {
	a.stats.Accesses++
	switch a.scheme {
	case AddressHash:
		hit, bank = a.accessHashed(addr, write)
	case Parallel:
		hit, bank = a.accessParallel(addr, write, len(a.banks))
	case Cascade:
		hit, bank = a.accessCascade(addr, write)
	case TwoLevel:
		hit, bank = a.accessTwoLevel(addr, write)
	default:
		panic("nuca: unknown aggregation scheme")
	}
	if hit {
		a.stats.Hits++
	} else {
		a.stats.Misses++
	}
	return hit, bank
}

// hashBank statically maps a block to a bank index. Mixing the block bits
// before the modulo keeps non-power-of-two bank counts balanced.
func (a *Aggregate) hashBank(addr trace.Addr) int {
	blk := uint64(addr) >> trace.BlockBits
	blk ^= blk >> 17
	blk *= 0x9e3779b97f4a7c15
	blk ^= blk >> 29
	return int(blk % uint64(len(a.banks)))
}

func (a *Aggregate) accessHashed(addr trace.Addr, write bool) (bool, int) {
	b := a.hashBank(addr)
	a.stats.Lookups++
	res := a.banks[b].Access(addr, a.core, write)
	return res.Hit, b
}

// accessParallel probes the first n banks; on miss it allocates round-robin.
func (a *Aggregate) accessParallel(addr trace.Addr, write bool, n int) (bool, int) {
	for i := 0; i < n; i++ {
		a.stats.Lookups++
		if a.banks[i].Probe(addr) {
			res := a.banks[i].Access(addr, a.core, write)
			if !res.Hit {
				panic("nuca: probe/access disagree")
			}
			return true, i
		}
	}
	b := a.rr % n
	a.rr++
	a.banks[b].Access(addr, a.core, write)
	return false, b
}

func (a *Aggregate) accessCascade(addr trace.Addr, write bool) (bool, int) {
	// Probe the chain from the head.
	found := -1
	for i, b := range a.banks {
		a.stats.Lookups++
		if b.Probe(addr) {
			found = i
			break
		}
	}
	if found == 0 {
		res := a.banks[0].Access(addr, a.core, write)
		if !res.Hit {
			panic("nuca: probe/access disagree at head")
		}
		return true, 0
	}
	dirty := write
	if found > 0 {
		// Promotion: remove from the deep bank, reinsert at the head.
		_, wasDirty := a.banks[found].Invalidate(addr)
		dirty = dirty || wasDirty
		a.stats.Migrations++ // the promotion move
	}
	// Insert at the head and ripple evictions down the chain. The freed
	// slot in bank `found` (if any) gives the ripple a place to stop.
	a.demoteChain(0, addr, dirty)
	if found > 0 {
		return true, found
	}
	return false, 0
}

// demoteChain inserts addr at bank level i, demoting evicted blocks into
// successive banks until the chain ends or a bank absorbs the victim
// without evicting.
func (a *Aggregate) demoteChain(i int, addr trace.Addr, dirty bool) {
	for ; i < len(a.banks); i++ {
		res := a.banks[i].Insert(addr, a.core, dirty)
		if !res.VictimValid {
			return
		}
		if i+1 < len(a.banks) {
			a.stats.Migrations++ // demotion move to the next bank
		}
		addr, dirty = res.VictimAddr, res.VictimDirty
	}
}

func (a *Aggregate) accessTwoLevel(addr trace.Addr, write bool) (bool, int) {
	n1 := len(a.banks) - 1 // first level: all but the last bank, Parallel
	for i := 0; i < n1; i++ {
		a.stats.Lookups++
		if a.banks[i].Probe(addr) {
			res := a.banks[i].Access(addr, a.core, write)
			if !res.Hit {
				panic("nuca: probe/access disagree in level 1")
			}
			return true, i
		}
	}
	second := len(a.banks) - 1
	a.stats.Lookups++
	if a.banks[second].Probe(addr) {
		// Promote to level 1; demote the displaced block to level 2.
		_, wasDirty := a.banks[second].Invalidate(addr)
		a.stats.Migrations++
		b := a.rr % n1
		a.rr++
		res := a.banks[b].Insert(addr, a.core, write || wasDirty)
		if res.VictimValid {
			a.stats.Migrations++
			a.banks[second].Insert(res.VictimAddr, a.core, res.VictimDirty)
		}
		return true, second
	}
	// Miss: fill level 1, demoting its victim into level 2.
	b := a.rr % n1
	a.rr++
	res := a.banks[b].Access(addr, a.core, write)
	if res.VictimValid {
		a.stats.Migrations++
		a.banks[second].Insert(res.VictimAddr, a.core, res.VictimDirty)
	}
	return false, b
}
