package nuca

import (
	"fmt"
	"strings"
)

// BankSet is a bitmask over the 16 L2 banks. The fault-injection layer uses
// it to mark banks failed; the allocators use it to describe the surviving
// capacity they may distribute. The zero value is the empty set.
type BankSet uint16

// With returns the set with bank b added.
func (s BankSet) With(b int) BankSet {
	mustBank(b)
	return s | 1<<uint(b)
}

// Without returns the set with bank b removed.
func (s BankSet) Without(b int) BankSet {
	mustBank(b)
	return s &^ (1 << uint(b))
}

// Has reports whether bank b is in the set.
func (s BankSet) Has(b int) bool {
	mustBank(b)
	return s&(1<<uint(b)) != 0
}

// Count returns the number of banks in the set.
func (s BankSet) Count() int {
	n := 0
	for b := 0; b < NumBanks; b++ {
		if s&(1<<uint(b)) != 0 {
			n++
		}
	}
	return n
}

// Banks returns the members in ascending bank order.
func (s BankSet) Banks() []int {
	var out []int
	for b := 0; b < NumBanks; b++ {
		if s&(1<<uint(b)) != 0 {
			out = append(out, b)
		}
	}
	return out
}

// SurvivingWays returns the total way capacity of the banks NOT in the set —
// the capacity a degraded allocator has left to distribute when s marks the
// failed banks.
func (s BankSet) SurvivingWays() int {
	return (NumBanks - s.Count()) * WaysPerBank
}

// String renders the set as a bank list ("{3,12}"); "{}" for the empty set.
func (s BankSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, b := range s.Banks() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", b)
	}
	sb.WriteByte('}')
	return sb.String()
}

// BankSetOf builds a set from a bank list, rejecting out-of-range ids.
func BankSetOf(banks ...int) (BankSet, error) {
	var s BankSet
	for _, b := range banks {
		if b < 0 || b >= NumBanks {
			return 0, fmt.Errorf("nuca: bank %d outside [0,%d)", b, NumBanks)
		}
		s = s.With(b)
	}
	return s, nil
}
