package nuca

import "testing"

func TestBankKinds(t *testing.T) {
	locals, centers := 0, 0
	for b := 0; b < NumBanks; b++ {
		switch BankKind(b) {
		case Local:
			locals++
		case Center:
			centers++
		}
	}
	if locals != 8 || centers != 8 {
		t.Fatalf("locals=%d centers=%d, want 8/8", locals, centers)
	}
	if Local.String() != "Local" || Center.String() != "Center" {
		t.Fatal("Kind strings wrong")
	}
}

func TestLocalBankAdjacency(t *testing.T) {
	for c := 0; c < NumCores; c++ {
		b := LocalBankOf(c)
		if CoreOfLocalBank(b) != c {
			t.Fatalf("core %d local bank %d round-trips to %d", c, b, CoreOfLocalBank(b))
		}
		if Hops(c, b) != 0 {
			t.Fatalf("core %d to its Local bank: %d hops, want 0", c, Hops(c, b))
		}
		if Latency(c, b) != MinLatency {
			t.Fatalf("adjacent Local latency = %d, want %d", Latency(c, b), MinLatency)
		}
	}
}

func TestCoreOfLocalBankPanicsOnCenter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CoreOfLocalBank(8)
}

func TestMaxLatencyAcrossChip(t *testing.T) {
	// Paper: core 0 accessing the Local bank next to core 7 takes 7 hops
	// and the maximum latency of 70 cycles.
	if Hops(0, LocalBankOf(7)) != 7 {
		t.Fatalf("core0->local7 hops = %d, want 7", Hops(0, LocalBankOf(7)))
	}
	if Latency(0, LocalBankOf(7)) != MaxLatency {
		t.Fatalf("core0->local7 latency = %d, want %d", Latency(0, LocalBankOf(7)), MaxLatency)
	}
}

func TestLatencyRange(t *testing.T) {
	for c := 0; c < NumCores; c++ {
		for b := 0; b < NumBanks; b++ {
			l := Latency(c, b)
			if l < MinLatency || l > MaxLatency {
				t.Fatalf("latency core %d bank %d = %d outside [%d,%d]", c, b, l, MinLatency, MaxLatency)
			}
		}
	}
}

func TestCenterBanksHigherMeanLowerSpread(t *testing.T) {
	// Section II: Center banks have higher average latency than Local banks
	// but less variation across cores.
	var localSum, centerSum int64
	localMin, localMax := int64(1<<60), int64(0)
	centerMin, centerMax := int64(1<<60), int64(0)
	for c := 0; c < NumCores; c++ {
		for b := 0; b < NumBanks; b++ {
			l := Latency(c, b)
			if BankKind(b) == Local {
				localSum += l
				if l < localMin {
					localMin = l
				}
				if l > localMax {
					localMax = l
				}
			} else {
				centerSum += l
				if l < centerMin {
					centerMin = l
				}
				if l > centerMax {
					centerMax = l
				}
			}
		}
	}
	localMean := float64(localSum) / 64
	centerMean := float64(centerSum) / 64
	if centerMean <= localMean {
		t.Fatalf("center mean %.1f <= local mean %.1f", centerMean, localMean)
	}
	if centerMax-centerMin >= localMax-localMin {
		t.Fatalf("center spread %d >= local spread %d", centerMax-centerMin, localMax-localMin)
	}
}

func TestRouterOfInRange(t *testing.T) {
	for b := 0; b < NumBanks; b++ {
		r := RouterOf(b)
		if r < 0 || r >= NumCores {
			t.Fatalf("RouterOf(%d) = %d", b, r)
		}
	}
}

func TestNetworkLatencyOneWayConsistent(t *testing.T) {
	// Request + bank + response must approximate the headline latency.
	for c := 0; c < NumCores; c++ {
		for b := 0; b < NumBanks; b++ {
			round := 2*NetworkLatencyOneWay(c, b) + MinLatency
			diff := round - Latency(c, b)
			if diff < -1 || diff > 1 {
				t.Fatalf("core %d bank %d: split latency %d vs direct %d", c, b, round, Latency(c, b))
			}
		}
	}
}

func TestAdjacentCores(t *testing.T) {
	if got := AdjacentCores(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("AdjacentCores(0) = %v", got)
	}
	if got := AdjacentCores(7); len(got) != 1 || got[0] != 6 {
		t.Fatalf("AdjacentCores(7) = %v", got)
	}
	if got := AdjacentCores(3); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("AdjacentCores(3) = %v", got)
	}
	if !Adjacent(2, 3) || !Adjacent(3, 2) || Adjacent(2, 4) || Adjacent(5, 5) {
		t.Fatal("Adjacent predicate wrong")
	}
}

func TestBoundsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { BankKind(-1) },
		func() { BankKind(16) },
		func() { LocalBankOf(8) },
		func() { Hops(8, 0) },
		func() { Hops(0, 16) },
		func() { AdjacentCores(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range argument")
				}
			}()
			f()
		}()
	}
}
