package msa

import (
	"testing"

	"bankaware/internal/stats"
	"bankaware/internal/trace"
)

// refProfiler is the slice-shuffle MSA implementation this package shipped
// with, kept verbatim as a differential oracle: per sampled set, a plain
// MRU-first tag slice scanned linearly and re-shuffled on every access. The
// SWAR/circular-buffer Profiler must produce bit-identical histograms.
type refProfiler struct {
	cfg       Config
	tagMask   uint64
	setMask   uint64
	stacks    [][]uint64
	counters  []uint64
	sampled   uint64
	shiftSets uint
}

func newRefProfiler(cfg Config) *refProfiler {
	nSampled := cfg.Sets >> cfg.SampleLog2
	r := &refProfiler{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		stacks:   make([][]uint64, nSampled),
		counters: make([]uint64, cfg.MaxWays+1),
	}
	for s := uint(0); 1<<s < cfg.Sets; s++ {
		r.shiftSets = s + 1
	}
	if cfg.PartialTagBits == 0 || cfg.PartialTagBits >= 64 {
		r.tagMask = ^uint64(0)
	} else {
		r.tagMask = 1<<cfg.PartialTagBits - 1
	}
	return r
}

func (r *refProfiler) access(addr trace.Addr) {
	blk := uint64(addr) >> trace.BlockBits
	set := blk & r.setMask
	if set&(1<<r.cfg.SampleLog2-1) != 0 {
		return
	}
	r.sampled++
	tag := (blk >> r.shiftSets) & r.tagMask
	idx := set >> r.cfg.SampleLog2
	stack := r.stacks[idx]
	depth := -1
	for i, t := range stack {
		if t == tag {
			depth = i
			break
		}
	}
	switch {
	case depth >= 0:
		r.counters[depth]++
		copy(stack[1:depth+1], stack[:depth])
		stack[0] = tag
	default:
		r.counters[r.cfg.MaxWays]++
		if len(stack) < r.cfg.MaxWays {
			stack = append(stack, 0)
		}
		copy(stack[1:], stack)
		stack[0] = tag
		r.stacks[idx] = stack
	}
}

// TestProfilerDifferential drives the SWAR profiler and the reference
// implementation with identical streams and demands bit-identical histograms
// after every burst, across configurations covering full and partial tags,
// sampling, tiny stacks (constant wrap-around), stacks not a multiple of the
// 8-lane signature word, and the paper's hardware configuration.
func TestProfilerDifferential(t *testing.T) {
	configs := []Config{
		{Sets: 64, MaxWays: 72, SampleLog2: 0},
		{Sets: 64, MaxWays: 72, SampleLog2: 2, PartialTagBits: 12},
		{Sets: 16, MaxWays: 4, SampleLog2: 0, PartialTagBits: 8},
		{Sets: 16, MaxWays: 3, SampleLog2: 1},
		{Sets: 8, MaxWays: 1, SampleLog2: 0},
		{Sets: 32, MaxWays: 13, SampleLog2: 0, PartialTagBits: 10},
		BaselineHardware(),
	}
	for ci, cfg := range configs {
		p := MustProfiler(cfg)
		ref := newRefProfiler(cfg)
		rng := stats.NewRNG(uint64(ci+1), 99)
		// Footprint a few times the tracked capacity so hits land at every
		// depth and misses constantly recycle the LRU slot; narrow tags add
		// alias-induced hits on top.
		nBlocks := cfg.Sets * cfg.MaxWays * 3
		for op := 0; op < 40000; op++ {
			var blkno int
			if rng.IntN(4) == 0 {
				blkno = rng.IntN(nBlocks / 8) // hot region: shallow depths
			} else {
				blkno = rng.IntN(nBlocks)
			}
			a := trace.Addr(uint64(blkno) << trace.BlockBits)
			p.Access(a)
			ref.access(a)
			if op%1000 == 999 {
				compareHistogram(t, ci, op, p, ref)
			}
		}
		compareHistogram(t, ci, -1, p, ref)
		if p.SampledAccesses() != ref.sampled {
			t.Fatalf("config %d: sampled %d, reference %d", ci, p.SampledAccesses(), ref.sampled)
		}
		// Reset must clear the stacks, not just the counters: a tag resident
		// before Reset must re-miss after it.
		p.Reset()
		ref = newRefProfiler(cfg)
		for op := 0; op < 5000; op++ {
			a := trace.Addr(uint64(rng.IntN(nBlocks)) << trace.BlockBits)
			p.Access(a)
			ref.access(a)
		}
		compareHistogram(t, ci, -2, p, ref)
	}
}

func compareHistogram(t *testing.T, ci, op int, p *Profiler, ref *refProfiler) {
	t.Helper()
	h := p.Histogram()
	for d, got := range h {
		if got != ref.counters[d] {
			t.Fatalf("config %d op %d: histogram[%d] = %d, reference %d", ci, op, d, got, ref.counters[d])
		}
	}
}
