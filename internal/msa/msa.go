// Package msa implements the paper's cache-profiling substrate: Mattson's
// stack-distance algorithm (Section III.A), in both an exact form (full
// tags, every set) and the proposed low-overhead hardware form — 12-bit
// partial tags, 1-in-32 set sampling and a 9/16 assignable-capacity cap —
// together with the Table II hardware-overhead model.
//
// The profiler monitors the L2 access stream of one core as if that core had
// a dedicated cache of MaxWays ways: on every access it finds the block's
// depth in the per-set LRU stack and increments the matching counter
// (Counter_1 = MRU ... Counter_K = LRU, Counter_{K+1} = miss). By the LRU
// inclusion property, the resulting histogram projects the miss count of
// every smaller cache in one pass: misses(w ways) = misses + hits deeper
// than w.
package msa

import (
	"fmt"

	"bankaware/internal/trace"
)

// Config parametrises a profiler.
type Config struct {
	// Sets is the set count of the monitored equivalent cache view (2048
	// for the baseline 16 MB / 128-way-equivalent L2). Must be a power of
	// two.
	Sets int
	// MaxWays is the deepest stack position tracked — the maximum capacity
	// assignable to one core. The paper caps it at 9/16 of the 128-way
	// total, i.e. 72 ways.
	MaxWays int
	// SampleLog2 selects 1-in-2^SampleLog2 set sampling (5 → 1-in-32).
	// Zero profiles every set (the exact configuration).
	SampleLog2 int
	// PartialTagBits truncates stored tags to this many bits (12 in the
	// paper). Zero stores full tags. Narrow tags alias: unrelated blocks
	// can match, inflating shallow hit counts — the accuracy/overhead
	// trade-off the paper quantifies at "within 5%" for 12 bits + 1-in-32.
	PartialTagBits int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("msa: sets must be a positive power of two, got %d", c.Sets)
	}
	if c.MaxWays < 1 || c.MaxWays > 1024 {
		return fmt.Errorf("msa: max ways %d outside [1,1024]", c.MaxWays)
	}
	if c.SampleLog2 < 0 || c.SampleLog2 > 30 || 1<<c.SampleLog2 > c.Sets {
		return fmt.Errorf("msa: sample rate log2 %d outside [0,30] or exceeds set count %d", c.SampleLog2, c.Sets)
	}
	if c.PartialTagBits < 0 || c.PartialTagBits > 64 {
		return fmt.Errorf("msa: partial tag bits %d outside [0,64]", c.PartialTagBits)
	}
	return nil
}

// BaselineExact returns the exact profiler configuration for the paper's
// baseline L2 view (2048 sets, 72-way cap, no sampling, full tags).
func BaselineExact() Config {
	return Config{Sets: 2048, MaxWays: 72}
}

// BaselineHardware returns the proposed low-overhead hardware configuration:
// 12-bit partial tags, 1-in-32 set sampling, 72-way cap.
func BaselineHardware() Config {
	return Config{Sets: 2048, MaxWays: 72, SampleLog2: 5, PartialTagBits: 12}
}

// Profiler is one core's MSA stack-distance monitor.
type Profiler struct {
	cfg       Config
	tagMask   uint64
	setMask   uint64
	setShift  uint
	stacks    [][]uint64 // per sampled set: tags, MRU first
	counters  []uint64   // [0..MaxWays-1] hit depth, [MaxWays] misses
	accesses  uint64
	sampled   uint64
	scale     float64 // sampling scale factor (2^SampleLog2)
	shiftSets uint    // log2(Sets), for tag extraction
}

// NewProfiler builds a profiler for cfg.
func NewProfiler(cfg Config) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSampled := cfg.Sets >> cfg.SampleLog2
	p := &Profiler{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		stacks:   make([][]uint64, nSampled),
		counters: make([]uint64, cfg.MaxWays+1),
		scale:    float64(int(1) << cfg.SampleLog2),
	}
	for s := uint(0); 1<<s < cfg.Sets; s++ {
		p.shiftSets = s + 1
	}
	if cfg.PartialTagBits == 0 || cfg.PartialTagBits >= 64 {
		p.tagMask = ^uint64(0)
	} else {
		p.tagMask = 1<<cfg.PartialTagBits - 1
	}
	return p, nil
}

// MustProfiler is NewProfiler that panics on bad configuration.
func MustProfiler(cfg Config) *Profiler {
	p, err := NewProfiler(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the profiler's configuration.
func (p *Profiler) Config() Config { return p.cfg }

// Access records one L2 access by the monitored core.
func (p *Profiler) Access(addr trace.Addr) {
	p.accesses++
	blk := uint64(addr) >> trace.BlockBits
	set := blk & p.setMask
	if set&(1<<p.cfg.SampleLog2-1) != 0 {
		return // set not sampled
	}
	p.sampled++
	tag := (blk >> p.shiftSets) & p.tagMask
	idx := set >> p.cfg.SampleLog2
	stack := p.stacks[idx]

	// Find the tag's depth in the LRU stack.
	depth := -1
	for i, t := range stack {
		if t == tag {
			depth = i
			break
		}
	}
	switch {
	case depth >= 0:
		p.counters[depth]++
		copy(stack[1:depth+1], stack[:depth])
		stack[0] = tag
	default:
		p.counters[p.cfg.MaxWays]++ // beyond tracked capacity: a miss
		if len(stack) < p.cfg.MaxWays {
			stack = append(stack, 0)
		}
		copy(stack[1:], stack)
		stack[0] = tag
		p.stacks[idx] = stack
	}
}

// Accesses returns the number of accesses observed (sampled or not).
func (p *Profiler) Accesses() uint64 { return p.accesses }

// SampledAccesses returns the number of accesses that hit sampled sets.
func (p *Profiler) SampledAccesses() uint64 { return p.sampled }

// Histogram returns a copy of the raw counters: index d < MaxWays is the
// number of sampled hits at stack depth d+1 (d = 0 is MRU), index MaxWays is
// the sampled miss count.
func (p *Profiler) Histogram() []uint64 {
	return append([]uint64(nil), p.counters...)
}

// MissCurve projects the histogram into estimated misses per possible
// allocation: element w is the estimated number of misses (scaled back up
// through the sampling factor) the core would suffer with w dedicated ways,
// for w = 0..MaxWays. Element 0 equals all sampled activity (everything
// misses with no capacity); the curve is non-increasing.
func (p *Profiler) MissCurve() []float64 {
	curve := make([]float64, p.cfg.MaxWays+1)
	acc := float64(p.counters[p.cfg.MaxWays])
	curve[p.cfg.MaxWays] = acc * p.scale
	for w := p.cfg.MaxWays - 1; w >= 0; w-- {
		acc += float64(p.counters[w])
		curve[w] = acc * p.scale
	}
	return curve
}

// MissRatioCurve is MissCurve normalised by the (scaled) sampled access
// count, giving the projected miss ratio at each allocation — the y-axis of
// the paper's Fig. 3.
func (p *Profiler) MissRatioCurve() []float64 {
	curve := p.MissCurve()
	total := float64(p.sampled) * p.scale
	if total == 0 {
		return curve
	}
	for i := range curve {
		curve[i] /= total
	}
	return curve
}

// Decay halves every counter. The epoch controller calls it after each
// repartitioning so the profile is an exponentially weighted window and
// tracks phase changes instead of averaging over the whole run.
func (p *Profiler) Decay() {
	for i := range p.counters {
		p.counters[i] >>= 1
	}
	p.accesses >>= 1
	p.sampled >>= 1
}

// Reset clears counters and stacks entirely.
func (p *Profiler) Reset() {
	for i := range p.counters {
		p.counters[i] = 0
	}
	for i := range p.stacks {
		p.stacks[i] = p.stacks[i][:0]
	}
	p.accesses, p.sampled = 0, 0
}
