// Package msa implements the paper's cache-profiling substrate: Mattson's
// stack-distance algorithm (Section III.A), in both an exact form (full
// tags, every set) and the proposed low-overhead hardware form — 12-bit
// partial tags, 1-in-32 set sampling and a 9/16 assignable-capacity cap —
// together with the Table II hardware-overhead model.
//
// The profiler monitors the L2 access stream of one core as if that core had
// a dedicated cache of MaxWays ways: on every access it finds the block's
// depth in the per-set LRU stack and increments the matching counter
// (Counter_1 = MRU ... Counter_K = LRU, Counter_{K+1} = miss). By the LRU
// inclusion property, the resulting histogram projects the miss count of
// every smaller cache in one pass: misses(w ways) = misses + hits deeper
// than w.
package msa

import (
	"fmt"
	"math/bits"

	"bankaware/internal/trace"
)

// Config parametrises a profiler.
type Config struct {
	// Sets is the set count of the monitored equivalent cache view (2048
	// for the baseline 16 MB / 128-way-equivalent L2). Must be a power of
	// two.
	Sets int
	// MaxWays is the deepest stack position tracked — the maximum capacity
	// assignable to one core. The paper caps it at 9/16 of the 128-way
	// total, i.e. 72 ways.
	MaxWays int
	// SampleLog2 selects 1-in-2^SampleLog2 set sampling (5 → 1-in-32).
	// Zero profiles every set (the exact configuration).
	SampleLog2 int
	// PartialTagBits truncates stored tags to this many bits (12 in the
	// paper). Zero stores full tags. Narrow tags alias: unrelated blocks
	// can match, inflating shallow hit counts — the accuracy/overhead
	// trade-off the paper quantifies at "within 5%" for 12 bits + 1-in-32.
	PartialTagBits int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("msa: sets must be a positive power of two, got %d", c.Sets)
	}
	if c.MaxWays < 1 || c.MaxWays > 1024 {
		return fmt.Errorf("msa: max ways %d outside [1,1024]", c.MaxWays)
	}
	if c.SampleLog2 < 0 || c.SampleLog2 > 30 || 1<<c.SampleLog2 > c.Sets {
		return fmt.Errorf("msa: sample rate log2 %d outside [0,30] or exceeds set count %d", c.SampleLog2, c.Sets)
	}
	if c.PartialTagBits < 0 || c.PartialTagBits > 64 {
		return fmt.Errorf("msa: partial tag bits %d outside [0,64]", c.PartialTagBits)
	}
	return nil
}

// BaselineExact returns the exact profiler configuration for the paper's
// baseline L2 view (2048 sets, 72-way cap, no sampling, full tags).
func BaselineExact() Config {
	return Config{Sets: 2048, MaxWays: 72}
}

// BaselineHardware returns the proposed low-overhead hardware configuration:
// 12-bit partial tags, 1-in-32 set sampling, 72-way cap.
func BaselineHardware() Config {
	return Config{Sets: 2048, MaxWays: 72, SampleLog2: 5, PartialTagBits: 12}
}

// Profiler is one core's MSA stack-distance monitor.
//
// Each sampled set keeps its LRU stack as a circular buffer of tags (MRU at
// the rotating start pointer), fronted by a packed word vector of one-byte
// tag signatures scanned eight lanes at a time with SWAR arithmetic. The
// scan answers presence without touching full tags (a lane matches a wrong
// tag with probability 2^-7, costing one confirming load); a miss — the
// common case under set sampling — then just decrements the start pointer
// and overwrites the old LRU slot in place, which retires the evicted tag
// and its signature with no list surgery, no hash-table deletion and no
// memmove. Only a confirmed hit shifts elements, and only the depth-long
// prefix — instead of the old implementation's O(MaxWays) work either way.
type Profiler struct {
	cfg      Config
	tagMask  uint64
	setMask  uint64
	counters []uint64 // [0..MaxWays-1] hit depth, [MaxWays] misses
	accesses uint64
	sampled  uint64
	scale    float64 // sampling scale factor (2^SampleLog2)

	// Per-sampled-set circular stacks: set si owns tag slots
	// [si*MaxWays, (si+1)*MaxWays) and signature words [si*sigWords,
	// (si+1)*sigWords) — slot n's signature is byte n%8 of word n/8.
	// Logical depth d lives at physical slot (start+d) mod MaxWays; slots
	// not yet filled hold signature 0, filtered by a liveness depth test.
	tags     []uint64
	sig      []uint64
	meta     []uint32 // per sampled set: MRU slot (low 16) | live entries (high 16)
	sigWords int      // ceil(MaxWays/8)

	shiftSets uint // log2(Sets), for tag extraction
}

// NewProfiler builds a profiler for cfg.
func NewProfiler(cfg Config) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nSampled := cfg.Sets >> cfg.SampleLog2
	sigWords := (cfg.MaxWays + 7) / 8
	p := &Profiler{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		counters: make([]uint64, cfg.MaxWays+1),
		scale:    float64(int(1) << cfg.SampleLog2),
		tags:     make([]uint64, nSampled*cfg.MaxWays),
		sig:      make([]uint64, nSampled*sigWords),
		meta:     make([]uint32, nSampled),
		sigWords: sigWords,
	}
	for s := uint(0); 1<<s < cfg.Sets; s++ {
		p.shiftSets = s + 1
	}
	if cfg.PartialTagBits == 0 || cfg.PartialTagBits >= 64 {
		p.tagMask = ^uint64(0)
	} else {
		p.tagMask = 1<<cfg.PartialTagBits - 1
	}
	return p, nil
}

// sigOf hashes a tag to a full byte signature. Unfilled slots also hold a
// byte (0) a signature can legitimately equal; the access path filters
// those with a liveness depth test rather than reserving a bit here.
func sigOf(tag uint64) uint64 {
	return tag * 0x9e3779b97f4a7c15 >> 56
}

// SWAR constants: repeated 0x01 / 0x80 bytes for lane-wise zero detection.
const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// MustProfiler is NewProfiler that panics on bad configuration.
func MustProfiler(cfg Config) *Profiler {
	p, err := NewProfiler(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the profiler's configuration.
func (p *Profiler) Config() Config { return p.cfg }

// Access records one L2 access by the monitored core.
func (p *Profiler) Access(addr trace.Addr) {
	p.accesses++
	blk := uint64(addr) >> trace.BlockBits
	set := blk & p.setMask
	if set&(1<<p.cfg.SampleLog2-1) != 0 {
		return // set not sampled
	}
	p.sampled++
	tag := (blk >> p.shiftSets) & p.tagMask
	si := int(set >> p.cfg.SampleLog2)

	// SWAR signature scan, eight slots per word. Per word, four arithmetic
	// ops answer "does any lane match"; the no-match branch is taken for
	// almost every word of almost every access, so it predicts perfectly
	// and the scan runs at memory speed. A matching lane — a hit, or a
	// 2^-8 false positive per live slot — is confirmed against the slot's
	// liveness and full tag before it counts.
	ss := p.sig[si*p.sigWords : (si+1)*p.sigWords]
	tbase := si * p.cfg.MaxWays
	sb := sigOf(tag)
	target := sb * swarOnes
	mt := p.meta[si]
	st, ln := int(mt&0xFFFF), int(mt>>16)
	for w, sw := range ss {
		x := sw ^ target
		m := (x - swarOnes) &^ x & swarHighs
		for m != 0 {
			slot := w<<3 + bits.TrailingZeros64(m)>>3
			// A lane can match a dead slot (signatures are full bytes,
			// and empty slots hold 0): the depth test filters unfilled
			// slots and the final word's padding lanes past MaxWays.
			depth := slot - st
			if depth < 0 {
				depth += p.cfg.MaxWays
			}
			if depth < ln && slot < p.cfg.MaxWays && p.tags[tbase+slot] == tag {
				p.hitAt(st, tbase, ss, slot, depth)
				return
			}
			m &= m - 1
		}
	}

	// Miss: rotate the MRU pointer back one slot and claim it. When the
	// stack is full that slot is exactly the old LRU entry, so writing the
	// new tag and signature over it is the entire eviction.
	p.counters[p.cfg.MaxWays]++
	if ln < p.cfg.MaxWays {
		ln++
	}
	if st == 0 {
		st = p.cfg.MaxWays
	}
	st--
	p.meta[si] = uint32(st) | uint32(ln)<<16
	p.tags[tbase+st] = tag
	sigSet(ss, st, sb)
}

// sigGet extracts the signature byte of slot from the packed word vector.
func sigGet(ss []uint64, slot int) uint64 {
	return ss[slot>>3] >> (uint(slot&7) << 3) & 0xFF
}

// sigSet stores sb as slot's signature byte in the packed word vector.
func sigSet(ss []uint64, slot int, sb uint64) {
	sh := uint(slot&7) << 3
	ss[slot>>3] = ss[slot>>3]&^(0xFF<<sh) | sb<<sh
}

// hitAt counts the depth of the confirmed hit at physical slot and moves
// it to the MRU position (st), shifting each shallower entry one slot
// deeper — depth moves in all, walking backwards through the circular
// buffer.
func (p *Profiler) hitAt(st, tbase int, ss []uint64, slot, depth int) {
	p.counters[depth]++
	if depth == 0 {
		return
	}
	tg := p.tags[tbase : tbase+p.cfg.MaxWays]
	tag, sb := tg[slot], sigGet(ss, slot)
	to := slot
	for d := depth; d > 0; d-- {
		from := to - 1
		if from < 0 {
			from = p.cfg.MaxWays - 1
		}
		tg[to] = tg[from]
		sigSet(ss, to, sigGet(ss, from))
		to = from
	}
	tg[st] = tag
	sigSet(ss, st, sb)
}

// Accesses returns the number of accesses observed (sampled or not).
func (p *Profiler) Accesses() uint64 { return p.accesses }

// SampledAccesses returns the number of accesses that hit sampled sets.
func (p *Profiler) SampledAccesses() uint64 { return p.sampled }

// Histogram returns a copy of the raw counters: index d < MaxWays is the
// number of sampled hits at stack depth d+1 (d = 0 is MRU), index MaxWays is
// the sampled miss count.
func (p *Profiler) Histogram() []uint64 {
	return append([]uint64(nil), p.counters...)
}

// MissCurve projects the histogram into estimated misses per possible
// allocation: element w is the estimated number of misses (scaled back up
// through the sampling factor) the core would suffer with w dedicated ways,
// for w = 0..MaxWays. Element 0 equals all sampled activity (everything
// misses with no capacity); the curve is non-increasing.
func (p *Profiler) MissCurve() []float64 {
	return p.MissCurveInto(nil)
}

// MissCurveInto is MissCurve writing into dst, reallocating only when dst
// is too small. It returns the (possibly grown) slice, so epoch controllers
// can ping-pong a pair of buffers and keep repartitioning allocation-free.
func (p *Profiler) MissCurveInto(dst []float64) []float64 {
	if cap(dst) < p.cfg.MaxWays+1 {
		dst = make([]float64, p.cfg.MaxWays+1)
	}
	dst = dst[:p.cfg.MaxWays+1]
	acc := float64(p.counters[p.cfg.MaxWays])
	dst[p.cfg.MaxWays] = acc * p.scale
	for w := p.cfg.MaxWays - 1; w >= 0; w-- {
		acc += float64(p.counters[w])
		dst[w] = acc * p.scale
	}
	return dst
}

// MissRatioCurve is MissCurve normalised by the (scaled) sampled access
// count, giving the projected miss ratio at each allocation — the y-axis of
// the paper's Fig. 3.
func (p *Profiler) MissRatioCurve() []float64 {
	curve := p.MissCurve()
	total := float64(p.sampled) * p.scale
	if total == 0 {
		return curve
	}
	for i := range curve {
		curve[i] /= total
	}
	return curve
}

// Decay halves every counter. The epoch controller calls it after each
// repartitioning so the profile is an exponentially weighted window and
// tracks phase changes instead of averaging over the whole run.
func (p *Profiler) Decay() {
	for i := range p.counters {
		p.counters[i] >>= 1
	}
	p.accesses >>= 1
	p.sampled >>= 1
}

// Reset clears counters and stacks entirely.
func (p *Profiler) Reset() {
	for i := range p.counters {
		p.counters[i] = 0
	}
	for i := range p.meta {
		p.meta[i] = 0
	}
	for i := range p.sig {
		p.sig[i] = 0
	}
	p.accesses, p.sampled = 0, 0
}
