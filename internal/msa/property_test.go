package msa

import (
	"testing"
	"testing/quick"

	"bankaware/internal/stats"
	"bankaware/internal/trace"
)

func TestHistogramMassConservation(t *testing.T) {
	// Property: hits + misses in the histogram always equal the sampled
	// access count, for any traffic and any sampling configuration.
	check := func(seed uint64, sampleRaw, tagRaw uint8) bool {
		cfg := Config{
			Sets:           64,
			MaxWays:        16,
			SampleLog2:     int(sampleRaw % 4),
			PartialTagBits: int(tagRaw%3) * 8, // 0, 8, 16
		}
		p := MustProfiler(cfg)
		rng := stats.NewRNG(seed, seed^0xcafe)
		for i := 0; i < 5000; i++ {
			p.Access(trace.Addr(rng.IntN(1<<14)) << trace.BlockBits)
		}
		var sum uint64
		for _, v := range p.Histogram() {
			sum += v
		}
		return sum == p.SampledAccesses()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecayPreservesCurveShape(t *testing.T) {
	// Decay halves counts but must not reorder the miss curve: the decayed
	// curve stays monotone and roughly half the original.
	p := MustProfiler(Config{Sets: 32, MaxWays: 8})
	rng := stats.NewRNG(8, 9)
	for i := 0; i < 60_000; i++ {
		p.Access(trace.Addr(rng.IntN(600)) << trace.BlockBits)
	}
	before := p.MissCurve()
	p.Decay()
	after := p.MissCurve()
	for w := 1; w < len(after); w++ {
		if after[w] > after[w-1] {
			t.Fatalf("decayed curve not monotone at %d", w)
		}
	}
	for w := range after {
		if before[w] == 0 {
			continue
		}
		ratio := after[w] / before[w]
		if ratio < 0.40 || ratio > 0.60 {
			t.Fatalf("decay ratio at %d ways = %.3f, want ~0.5", w, ratio)
		}
	}
}

func TestRepeatedDecayDrainsToZero(t *testing.T) {
	p := MustProfiler(Config{Sets: 8, MaxWays: 4})
	for i := 0; i < 1000; i++ {
		p.Access(trace.Addr(i%40) << trace.BlockBits)
	}
	for k := 0; k < 64; k++ {
		p.Decay()
	}
	for _, v := range p.Histogram() {
		if v != 0 {
			t.Fatal("64 decays left residual counts")
		}
	}
	if p.Accesses() != 0 {
		t.Fatal("64 decays left residual accesses")
	}
}

func TestMissCurveScaleInvariance(t *testing.T) {
	// Property: the miss-RATIO curve of a sampled profiler converges to
	// the all-sets profiler's on uniform traffic (the scale factor only
	// affects counts, not ratios). Uses identical per-set traffic so
	// sampling introduces no selection bias.
	full := MustProfiler(Config{Sets: 32, MaxWays: 8})
	sampled := MustProfiler(Config{Sets: 32, MaxWays: 8, SampleLog2: 2})
	rng := stats.NewRNG(77, 78)
	for i := 0; i < 200_000; i++ {
		a := trace.Addr(rng.IntN(500)) << trace.BlockBits
		full.Access(a)
		sampled.Access(a)
	}
	f, s := full.MissRatioCurve(), sampled.MissRatioCurve()
	for w := range f {
		d := f[w] - s[w]
		if d < -0.05 || d > 0.05 {
			t.Fatalf("ratio curves diverge at %d ways: %.3f vs %.3f", w, f[w], s[w])
		}
	}
}
