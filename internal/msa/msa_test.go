package msa

import (
	"math"
	"testing"

	"bankaware/internal/stats"
	"bankaware/internal/trace"
)

// addrFor builds a block address mapping to the given set and tag under a
// profiler with `sets` sets.
func addrFor(set, tag uint64, sets int) trace.Addr {
	shift := uint(0)
	for 1<<shift < sets {
		shift++
	}
	return trace.Addr((tag<<shift | set) << trace.BlockBits)
}

func TestConfigValidate(t *testing.T) {
	if err := BaselineExact().Validate(); err != nil {
		t.Fatalf("baseline exact invalid: %v", err)
	}
	if err := BaselineHardware().Validate(); err != nil {
		t.Fatalf("baseline hardware invalid: %v", err)
	}
	bad := []Config{
		{Sets: 0, MaxWays: 8},
		{Sets: 3, MaxWays: 8},
		{Sets: 8, MaxWays: 0},
		{Sets: 8, MaxWays: 2000},
		{Sets: 8, MaxWays: 4, SampleLog2: 4}, // 1-in-16 of 8 sets
		{Sets: 8, MaxWays: 4, PartialTagBits: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestStackDepthCounting(t *testing.T) {
	p := MustProfiler(Config{Sets: 1, MaxWays: 4})
	a := func(tag uint64) trace.Addr { return addrFor(0, tag, 1) }
	// First touches are misses.
	p.Access(a(1))
	p.Access(a(2))
	p.Access(a(3))
	// Stack is [3 2 1]. Re-touch 3 -> depth 0 (MRU), 1 -> depth 2.
	p.Access(a(3))
	p.Access(a(1))
	h := p.Histogram()
	if h[0] != 1 || h[2] != 1 {
		t.Fatalf("histogram = %v, want hits at depths 0 and 2", h)
	}
	if h[4] != 3 {
		t.Fatalf("misses = %d, want 3", h[4])
	}
}

func TestLRUStackEviction(t *testing.T) {
	p := MustProfiler(Config{Sets: 1, MaxWays: 2})
	a := func(tag uint64) trace.Addr { return addrFor(0, tag, 1) }
	p.Access(a(1))
	p.Access(a(2))
	p.Access(a(3)) // pushes 1 off the 2-deep stack
	p.Access(a(1)) // must be a miss again
	h := p.Histogram()
	if h[2] != 4 {
		t.Fatalf("misses = %d, want 4 (re-touch beyond capacity is a miss)", h[2])
	}
}

func TestMissCurveFromHistogram(t *testing.T) {
	p := MustProfiler(Config{Sets: 1, MaxWays: 3})
	a := func(tag uint64) trace.Addr { return addrFor(0, tag, 1) }
	// Construct: 3 misses, then hits at depth 1 (x2) and depth 3 (x1).
	p.Access(a(1))
	p.Access(a(2))
	p.Access(a(3)) // stack [3 2 1]
	p.Access(a(2)) // depth 1
	p.Access(a(3)) // depth 1 (stack was [2 3 1])
	p.Access(a(1)) // depth 2
	curve := p.MissCurve()
	// hits: d0=0 d1=2 d2=1; misses=3. misses(w)=3+sum_{d>=w}hits.
	want := []float64{6, 6, 4, 3}
	for w, v := range want {
		if math.Abs(curve[w]-v) > 1e-9 {
			t.Fatalf("curve[%d] = %v, want %v (full curve %v)", w, curve[w], v, curve)
		}
	}
}

func TestMissCurveMonotone(t *testing.T) {
	p := MustProfiler(Config{Sets: 16, MaxWays: 8})
	rng := stats.NewRNG(3, 14)
	for i := 0; i < 50000; i++ {
		p.Access(addrFor(uint64(rng.IntN(16)), uint64(rng.IntN(40)), 16))
	}
	curve := p.MissCurve()
	for w := 1; w < len(curve); w++ {
		if curve[w] > curve[w-1] {
			t.Fatalf("miss curve increased at %d: %v > %v", w, curve[w], curve[w-1])
		}
	}
	if curve[0] != float64(p.SampledAccesses()) {
		t.Fatalf("curve[0] = %v, want all sampled accesses %d", curve[0], p.SampledAccesses())
	}
}

func TestSetSamplingCountsOnlySampledSets(t *testing.T) {
	p := MustProfiler(Config{Sets: 8, MaxWays: 4, SampleLog2: 2}) // sample sets 0 and 4
	for set := uint64(0); set < 8; set++ {
		p.Access(addrFor(set, 1, 8))
	}
	if p.Accesses() != 8 {
		t.Fatalf("Accesses = %d", p.Accesses())
	}
	if p.SampledAccesses() != 2 {
		t.Fatalf("SampledAccesses = %d, want 2", p.SampledAccesses())
	}
}

func TestSamplingScaleFactor(t *testing.T) {
	// With 1-in-4 sampling, the projected miss curve must scale sampled
	// counts by 4.
	p := MustProfiler(Config{Sets: 8, MaxWays: 4, SampleLog2: 2})
	p.Access(addrFor(0, 1, 8)) // sampled miss
	curve := p.MissCurve()
	if curve[4] != 4 {
		t.Fatalf("scaled misses = %v, want 4", curve[4])
	}
}

func TestPartialTagAliasing(t *testing.T) {
	// Two blocks whose tags agree in the low 2 bits alias under 2-bit
	// partial tags: the second access falsely "hits".
	p := MustProfiler(Config{Sets: 1, MaxWays: 4, PartialTagBits: 2})
	p.Access(addrFor(0, 0b0101, 1))
	p.Access(addrFor(0, 0b1001, 1)) // same low 2 bits (01)
	h := p.Histogram()
	if h[0] != 1 {
		t.Fatalf("aliased access should count as MRU hit; histogram %v", h)
	}
	// Full tags keep them distinct.
	q := MustProfiler(Config{Sets: 1, MaxWays: 4})
	q.Access(addrFor(0, 0b0101, 1))
	q.Access(addrFor(0, 0b1001, 1))
	if q.Histogram()[4] != 2 {
		t.Fatalf("full-tag profiler miscounted: %v", q.Histogram())
	}
}

func TestMissRatioCurve(t *testing.T) {
	p := MustProfiler(Config{Sets: 1, MaxWays: 2})
	a := func(tag uint64) trace.Addr { return addrFor(0, tag, 1) }
	p.Access(a(1))
	p.Access(a(1))
	p.Access(a(1))
	p.Access(a(2))
	r := p.MissRatioCurve()
	if math.Abs(r[0]-1) > 1e-9 {
		t.Fatalf("ratio curve [0] = %v, want 1", r[0])
	}
	if math.Abs(r[2]-0.5) > 1e-9 { // 2 misses of 4 accesses
		t.Fatalf("ratio curve [2] = %v, want 0.5", r[2])
	}
}

func TestMissRatioCurveEmpty(t *testing.T) {
	p := MustProfiler(Config{Sets: 1, MaxWays: 2})
	r := p.MissRatioCurve()
	for _, v := range r {
		if v != 0 {
			t.Fatalf("empty profiler ratio curve = %v", r)
		}
	}
}

func TestDecayHalvesCounters(t *testing.T) {
	p := MustProfiler(Config{Sets: 1, MaxWays: 2})
	a := func(tag uint64) trace.Addr { return addrFor(0, tag, 1) }
	for i := 0; i < 8; i++ {
		p.Access(a(1))
	}
	p.Decay()
	h := p.Histogram()
	if h[0] != 3 { // 7 MRU hits halved
		t.Fatalf("decayed MRU counter = %d, want 3", h[0])
	}
	if p.Accesses() != 4 {
		t.Fatalf("decayed accesses = %d, want 4", p.Accesses())
	}
}

func TestReset(t *testing.T) {
	p := MustProfiler(Config{Sets: 1, MaxWays: 2})
	p.Access(addrFor(0, 1, 1))
	p.Reset()
	if p.Accesses() != 0 || p.SampledAccesses() != 0 {
		t.Fatal("Reset left counters")
	}
	for _, v := range p.Histogram() {
		if v != 0 {
			t.Fatal("Reset left histogram mass")
		}
	}
	// Stack must also be cleared: next access is a miss at depth MaxWays.
	p.Access(addrFor(0, 1, 1))
	if p.Histogram()[2] != 1 {
		t.Fatal("Reset did not clear LRU stacks")
	}
}

func TestProfilerMatchesSpecCurve(t *testing.T) {
	// End-to-end: profile a generator's stream with the exact profiler and
	// compare the projected miss-ratio curve against the spec's analytic
	// curve at several allocations.
	const bpw = 64 // blocks per way = profiler sets
	spec := trace.Spec{
		Name:     "probe",
		HitMass:  []float64{0.30, 0.25, 0.15, 0.10},
		ColdFrac: 0.20,
		MemPerKI: 100,
	}
	g := trace.MustGenerator(spec, stats.NewRNG(77, 88), trace.GeneratorConfig{BlocksPerWay: bpw})
	p := MustProfiler(Config{Sets: bpw, MaxWays: 8})
	for i := 0; i < 200000; i++ {
		p.Access(g.Next().Access.Addr)
	}
	got := p.MissRatioCurve()
	want := spec.MissCurve(8)
	// Tolerance note: the analytic curve is fully associative while the
	// profiler tracks per-set LRU depth; the binomial spread of blocks over
	// sets smears mass across way buckets where the curve is steep (the
	// set-associative conflict effect), so a few percent of systematic
	// pessimism is expected, not a bug.
	for _, w := range []int{1, 2, 3, 4, 6, 8} {
		if math.Abs(got[w]-want[w]) > 0.065 {
			t.Errorf("ways=%d: profiled %.4f, analytic %.4f", w, got[w], want[w])
		}
	}
}

func TestHardwareProfilerWithin5PercentOfExact(t *testing.T) {
	// The paper's claim for the low-overhead implementation: 12-bit partial
	// tags with 1-in-32 sampling stay within 5% of the full-tag profile.
	spec := trace.MustSpec("bzip2")
	mkgen := func() *trace.Generator {
		return trace.MustGenerator(spec, stats.NewRNG(5, 6), trace.GeneratorConfig{BlocksPerWay: 256})
	}
	exact := MustProfiler(Config{Sets: 256, MaxWays: 72})
	hw := MustProfiler(Config{Sets: 256, MaxWays: 72, SampleLog2: 5, PartialTagBits: 12})
	g1, g2 := mkgen(), mkgen()
	for i := 0; i < 400000; i++ {
		a := g1.Next().Access.Addr
		exact.Access(a)
		hw.Access(g2.Next().Access.Addr)
		_ = a
	}
	e := exact.MissRatioCurve()
	h := hw.MissRatioCurve()
	for _, w := range []int{8, 16, 32, 48, 64, 72} {
		if math.Abs(e[w]-h[w]) > 0.05 {
			t.Errorf("ways=%d: exact %.4f vs hardware %.4f (>5%% apart)", w, e[w], h[w])
		}
	}
}

func TestTableIIOverhead(t *testing.T) {
	o := ComputeOverhead(BaselineOverhead())
	if k := Kbits(o.PartialTagBits); k != 54 {
		t.Errorf("partial tags = %v kbits, paper Table II: 54", k)
	}
	if k := Kbits(o.LRUStackBits); math.Abs(k-27) > 1 {
		t.Errorf("LRU stack = %v kbits, paper Table II: 27", k)
	}
	if k := Kbits(o.HitCounterBits); k != 2.25 {
		t.Errorf("hit counters = %v kbits, paper Table II: 2.25", k)
	}
	pct := PercentOfCache(BaselineOverhead())
	if pct < 0.3 || pct > 0.6 {
		t.Errorf("total overhead = %.3f%% of LLC, paper: ~0.4%%", pct)
	}
}

func TestOverheadString(t *testing.T) {
	s := ComputeOverhead(BaselineOverhead()).String()
	if s == "" {
		t.Fatal("empty overhead string")
	}
}

func TestMustProfilerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustProfiler should panic on invalid config")
		}
	}()
	MustProfiler(Config{})
}
