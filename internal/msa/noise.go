package msa

import "bankaware/internal/stats"

// NoisyCurve returns a perturbed copy of a miss curve: every point is scaled
// by an independent factor drawn uniformly from [1-amp, 1+amp], modelling an
// imperfect hardware profiler (aliasing partial tags, under-sampled sets).
// The result is clamped non-negative and repaired back-to-front to stay
// non-increasing, since a miss curve that grows with extra ways would
// violate the LRU inclusion property the allocators rely on. amp <= 0
// returns an unperturbed copy.
func NoisyCurve(curve []float64, amp float64, rng *stats.RNG) []float64 {
	out := make([]float64, len(curve))
	copy(out, curve)
	if amp <= 0 || rng == nil {
		return out
	}
	for i, v := range out {
		f := 1 + amp*(2*rng.Float64()-1)
		if f < 0 {
			f = 0
		}
		out[i] = v * f
	}
	for i := len(out) - 2; i >= 0; i-- {
		if out[i] < out[i+1] {
			out[i] = out[i+1]
		}
	}
	return out
}
