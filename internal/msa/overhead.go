package msa

import "fmt"

// OverheadConfig parametrises the Table II hardware-overhead model of the
// proposed profiler implementation.
type OverheadConfig struct {
	// TagBits is the partial tag width (12 in the paper).
	TagBits int
	// Ways is the maximum assignable capacity in ways (72 = 9/16 of 128).
	Ways int
	// SampledSets is the number of profiled sets (2048/32 = 64).
	SampledSets int
	// LRUPointerBits is the width of one LRU-stack pointer. The paper's
	// Table II numbers correspond to 6-bit pointers; note 72 ways would
	// strictly need 7 bits — the calculator exposes the knob so both
	// readings can be reproduced.
	LRUPointerBits int
	// HitCounterBits is the width of one shared hit counter (32).
	HitCounterBits int
	// Profilers is the number of per-core profilers on the chip (8).
	Profilers int
	// CacheBytes is the LLC capacity the overhead is compared against
	// (16 MB).
	CacheBytes int
}

// BaselineOverhead returns the paper's Table II parameters.
func BaselineOverhead() OverheadConfig {
	return OverheadConfig{
		TagBits:        12,
		Ways:           72,
		SampledSets:    64,
		LRUPointerBits: 6,
		HitCounterBits: 32,
		Profilers:      8,
		CacheBytes:     16 << 20,
	}
}

// Overhead is the Table II breakdown, in bits.
type Overhead struct {
	PartialTagBits uint64 // tag_width x ways x cache_sets
	LRUStackBits   uint64 // ((lru_pointer_size x ways) + head/tail) x cache_sets
	HitCounterBits uint64 // cache_ways x hit_counter_size
}

// ComputeOverhead evaluates the Table II formulas.
func ComputeOverhead(c OverheadConfig) Overhead {
	return Overhead{
		PartialTagBits: uint64(c.TagBits) * uint64(c.Ways) * uint64(c.SampledSets),
		LRUStackBits:   (uint64(c.LRUPointerBits)*uint64(c.Ways) + 2*uint64(c.LRUPointerBits)) * uint64(c.SampledSets),
		HitCounterBits: uint64(c.Ways) * uint64(c.HitCounterBits),
	}
}

// TotalBits returns the per-profiler total.
func (o Overhead) TotalBits() uint64 {
	return o.PartialTagBits + o.LRUStackBits + o.HitCounterBits
}

// Kbits converts bits to kbits (1024 bits).
func Kbits(bits uint64) float64 { return float64(bits) / 1024 }

// PercentOfCache returns the chip-wide profiler overhead (profilers x total)
// as a percentage of the LLC's data capacity — the paper's "approximately
// 0.4% of our 16MB LLC" figure.
func PercentOfCache(c OverheadConfig) float64 {
	total := ComputeOverhead(c).TotalBits() * uint64(c.Profilers)
	cacheBits := uint64(c.CacheBytes) * 8
	return 100 * float64(total) / float64(cacheBits)
}

// String renders the Table II rows.
func (o Overhead) String() string {
	return fmt.Sprintf(
		"partial tags %.2f kbits, LRU stack %.2f kbits, hit counters %.2f kbits (total %.2f kbits)",
		Kbits(o.PartialTagBits), Kbits(o.LRUStackBits), Kbits(o.HitCounterBits), Kbits(o.TotalBits()))
}
