package msa

import "bankaware/internal/metrics"

// RegisterMetrics exposes the profiler's activity in reg under prefix (e.g.
// "msa.core3"), evaluated lazily at snapshot time.
func (p *Profiler) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterFunc(prefix+".accesses", func() float64 { return float64(p.accesses) })
	reg.RegisterFunc(prefix+".sampled_accesses", func() float64 { return float64(p.sampled) })
}
