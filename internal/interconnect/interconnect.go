// Package interconnect models the on-chip network that carries L2 requests
// and responses between cores and cache banks. The baseline chip (Fig. 1)
// places the eight cores and their Local banks along a line with the Center
// banks mid-chip, so the network is a chain of routers with bidirectional
// links; messages pay a per-hop wire latency plus serialisation and
// queueing on each link they cross.
//
// The model is a resource-timeline simulation: each directed link remembers
// when it becomes free, so two messages crossing the same link back-to-back
// observe realistic queueing without simulating individual flits.
package interconnect

import (
	"fmt"
	"math"
)

// Stats aggregates network activity.
type Stats struct {
	Transfers   uint64
	TotalHops   uint64
	QueueCycles uint64 // cycles spent waiting for busy links
}

// Network is a chain of `nodes` routers; link i connects node i and i+1.
type Network struct {
	nodes      int
	perHop     float64 // one-way per-hop wire+router latency, cycles
	flitCycles int64   // serialisation occupancy per link, per message
	// linkFree[i][d] is the first free cycle of link i in direction d
	// (0 = towards higher node ids, 1 = towards lower).
	linkFree [][2]int64
	stats    Stats
}

// New builds a chain network. perHop may be fractional (the paper's 10-to-70
// cycle span over 7 hops implies 60/7 cycles per hop); path latencies are
// rounded so that an h-hop uncontended transfer takes exactly
// round(h*perHop) cycles.
func New(nodes int, perHop float64, flitCycles int64) (*Network, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("interconnect: need at least one node, got %d", nodes)
	}
	if perHop < 0 || flitCycles < 0 {
		return nil, fmt.Errorf("interconnect: negative latency parameters")
	}
	return &Network{
		nodes:      nodes,
		perHop:     perHop,
		flitCycles: flitCycles,
		linkFree:   make([][2]int64, nodes-1),
	}, nil
}

// MustNew is New that panics on invalid parameters.
func MustNew(nodes int, perHop float64, flitCycles int64) *Network {
	n, err := New(nodes, perHop, flitCycles)
	if err != nil {
		panic(err)
	}
	return n
}

// Nodes returns the router count.
func (n *Network) Nodes() int { return n.nodes }

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats }

// PathLatency returns the uncontended latency of an h-hop transfer.
func (n *Network) PathLatency(hops int) int64 {
	return int64(math.Round(float64(hops) * n.perHop))
}

// Transfer sends a message of `flits` flits from src to dst starting no
// earlier than `start`, and returns its arrival cycle. Each crossed link is
// occupied for flits*flitCycles; a busy link delays the message. Transfers
// must be issued in non-decreasing start order across the simulation (the
// event queue guarantees this); out-of-order calls still work but model
// contention conservatively.
func (n *Network) Transfer(src, dst int, start int64, flits int64) int64 {
	if src < 0 || src >= n.nodes || dst < 0 || dst >= n.nodes {
		panic(fmt.Sprintf("interconnect: transfer %d->%d outside [0,%d)", src, dst, n.nodes))
	}
	n.stats.Transfers++
	if src == dst {
		return start
	}
	dir := 0
	step := 1
	if dst < src {
		dir = 1
		step = -1
	}
	hops := step * (dst - src)
	n.stats.TotalHops += uint64(hops)
	occupancy := flits * n.flitCycles

	cursor := start
	queued := int64(0)
	node := src
	for h := 0; h < hops; h++ {
		link := node
		if dir == 1 {
			link = node - 1
		}
		depart := cursor
		if free := n.linkFree[link][dir]; free > depart {
			queued += free - depart
			depart = free
		}
		n.linkFree[link][dir] = depart + occupancy
		// Per-hop wire latency, distributed so the total is exactly
		// round(hops*perHop) in the uncontended case.
		wire := int64(math.Round(float64(h+1)*n.perHop)) - int64(math.Round(float64(h)*n.perHop))
		cursor = depart + wire
		node += step
	}
	n.stats.QueueCycles += uint64(queued)
	return cursor
}

// ResetStats zeroes the counters (link timelines are untouched).
func (n *Network) ResetStats() { n.stats = Stats{} }
