package interconnect

import "bankaware/internal/metrics"

// RegisterMetrics exposes the network counters in reg under prefix (e.g.
// "net"), evaluated lazily at snapshot time.
func (n *Network) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterFunc(prefix+".transfers", func() float64 { return float64(n.stats.Transfers) })
	reg.RegisterFunc(prefix+".total_hops", func() float64 { return float64(n.stats.TotalHops) })
	reg.RegisterFunc(prefix+".queue_cycles", func() float64 { return float64(n.stats.QueueCycles) })
}
