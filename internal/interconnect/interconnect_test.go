package interconnect

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(4, -1, 1); err == nil {
		t.Fatal("negative per-hop latency accepted")
	}
	if _, err := New(4, 1, -1); err == nil {
		t.Fatal("negative flit cycles accepted")
	}
	if n, err := New(8, 8.571, 1); err != nil || n.Nodes() != 8 {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic")
		}
	}()
	MustNew(0, 1, 1)
}

func TestUncontendedLatency(t *testing.T) {
	// 60/7 cycles per hop: 7 hops must take exactly 60 cycles.
	n := MustNew(8, 60.0/7.0, 1)
	got := n.Transfer(0, 7, 100, 1)
	if got != 160 {
		t.Fatalf("7-hop transfer arrived at %d, want 160", got)
	}
	if n.PathLatency(7) != 60 {
		t.Fatalf("PathLatency(7) = %d, want 60", n.PathLatency(7))
	}
}

func TestZeroHopTransfer(t *testing.T) {
	n := MustNew(4, 5, 2)
	if got := n.Transfer(2, 2, 42, 4); got != 42 {
		t.Fatalf("self transfer arrived at %d, want 42", got)
	}
	if n.Stats().TotalHops != 0 {
		t.Fatal("self transfer counted hops")
	}
}

func TestDirectionalityAndSymmetry(t *testing.T) {
	n := MustNew(8, 4, 1)
	a := n.Transfer(1, 5, 0, 1)
	b := n.Transfer(5, 1, 0, 1)
	if a != b {
		t.Fatalf("asymmetric uncontended latency: %d vs %d", a, b)
	}
	if a != 16 {
		t.Fatalf("4-hop transfer = %d, want 16", a)
	}
}

func TestLinkContentionQueues(t *testing.T) {
	// Two messages crossing link 0 in the same direction at the same time:
	// the second is delayed by the first's occupancy.
	n := MustNew(2, 10, 4)
	a := n.Transfer(0, 1, 0, 1) // occupies link for 4 cycles
	b := n.Transfer(0, 1, 0, 1)
	if a != 10 {
		t.Fatalf("first arrival = %d, want 10", a)
	}
	if b != 14 {
		t.Fatalf("second arrival = %d, want 14 (4-cycle serialisation)", b)
	}
	if n.Stats().QueueCycles != 4 {
		t.Fatalf("QueueCycles = %d, want 4", n.Stats().QueueCycles)
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	n := MustNew(2, 10, 4)
	n.Transfer(0, 1, 0, 1)
	b := n.Transfer(1, 0, 0, 1)
	if b != 10 {
		t.Fatalf("reverse-direction transfer delayed: %d", b)
	}
	if n.Stats().QueueCycles != 0 {
		t.Fatal("reverse direction accrued queueing")
	}
}

func TestFlitsScaleOccupancy(t *testing.T) {
	// A 4-flit (cache line) message occupies links 4x longer than a
	// single-flit request.
	n := MustNew(2, 10, 2)
	n.Transfer(0, 1, 0, 4) // occupies 8 cycles
	b := n.Transfer(0, 1, 0, 1)
	if b != 18 {
		t.Fatalf("arrival = %d, want 18", b)
	}
}

func TestTransferPanicsOutOfRange(t *testing.T) {
	n := MustNew(4, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range transfer should panic")
		}
	}()
	n.Transfer(0, 4, 0, 1)
}

func TestStatsAccumulation(t *testing.T) {
	n := MustNew(8, 1, 1)
	n.Transfer(0, 3, 0, 1)
	n.Transfer(7, 2, 0, 1)
	s := n.Stats()
	if s.Transfers != 2 || s.TotalHops != 8 {
		t.Fatalf("stats = %+v", s)
	}
	n.ResetStats()
	if n.Stats().Transfers != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestArrivalNeverBeforeUncontended(t *testing.T) {
	// Property: with arbitrary interleaved traffic, every transfer arrives
	// no earlier than start + uncontended path latency.
	check := func(pairs []uint16) bool {
		n := MustNew(8, 60.0/7.0, 2)
		now := int64(0)
		for _, p := range pairs {
			src := int(p) % 8
			dst := int(p>>3) % 8
			now += int64(p % 5)
			got := n.Transfer(src, dst, now, 4)
			hops := src - dst
			if hops < 0 {
				hops = -hops
			}
			if got < now+n.PathLatency(hops) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
