package interconnect

import (
	"testing"
	"testing/quick"
)

func TestLinkTimelineMonotoneUnderOrderedTraffic(t *testing.T) {
	// Property: when transfers are issued in non-decreasing start order
	// (the event queue's guarantee), each link's successive departures on
	// one direction never overlap — arrival times for repeated identical
	// transfers are non-decreasing and spaced by at least the occupancy.
	check := func(gaps []uint8) bool {
		n := MustNew(4, 5, 3)
		now := int64(0)
		var lastArrival int64
		for _, g := range gaps {
			now += int64(g % 8)
			a := n.Transfer(0, 3, now, 2) // occupies each link 6 cycles
			if a < lastArrival && a < now {
				return false
			}
			if a > lastArrival {
				lastArrival = a
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerialisedBackToBackSpacing(t *testing.T) {
	// Two identical transfers issued at the same cycle must arrive exactly
	// one occupancy apart (head-of-line serialisation on the first link
	// propagates down the path).
	n := MustNew(3, 4, 5)
	a := n.Transfer(0, 2, 0, 1) // occupancy 5 per link
	b := n.Transfer(0, 2, 0, 1)
	if b-a != 5 {
		t.Fatalf("spacing = %d, want 5", b-a)
	}
}

func TestCrossTrafficOnDisjointLinksIndependent(t *testing.T) {
	// Transfers over disjoint link sets must not delay each other.
	n := MustNew(8, 2, 10)
	n.Transfer(0, 1, 0, 4) // link 0 only
	b := n.Transfer(6, 7, 0, 4)
	if b != 2 {
		t.Fatalf("disjoint transfer delayed: arrival %d, want 2", b)
	}
}

func TestQueueCyclesOnlyFromContention(t *testing.T) {
	n := MustNew(4, 3, 2)
	// Well-spaced transfers: no queueing at all.
	for i := int64(0); i < 20; i++ {
		n.Transfer(0, 3, i*100, 1)
	}
	if q := n.Stats().QueueCycles; q != 0 {
		t.Fatalf("spaced traffic queued %d cycles", q)
	}
	// A burst at one instant must queue.
	for i := 0; i < 5; i++ {
		n.Transfer(0, 3, 10_000, 1)
	}
	if q := n.Stats().QueueCycles; q == 0 {
		t.Fatal("burst did not queue")
	}
}

func TestPathLatencyZeroHops(t *testing.T) {
	n := MustNew(4, 7.3, 1)
	if n.PathLatency(0) != 0 {
		t.Fatalf("PathLatency(0) = %d", n.PathLatency(0))
	}
}
