// Sharing: exercises the MOESI directory. Cores 0 and 1 run a
// producer/consumer pair over one shared buffer — the producer writes,
// the consumer reads — while the other six cores run private workloads.
// The example prints the coherence traffic the directory generated and the
// states it moved the shared lines through.
package main

import (
	"fmt"
	"log"

	"bankaware"
	"bankaware/internal/experiments"
	"bankaware/internal/trace"
)

// pingPong alternately writes (producer role) and reads (consumer role) a
// shared ring of cache lines.
type pingPong struct {
	base   trace.Addr
	lines  uint64
	write  bool
	cursor uint64
}

func (p *pingPong) Next() trace.Event {
	p.cursor++
	return trace.Event{
		Gap: 7,
		Access: trace.Access{
			Addr:  p.base + trace.Addr((p.cursor%p.lines)<<trace.BlockBits),
			Write: p.write,
		},
	}
}

func main() {
	cfg := experiments.ScaleModel.Config()
	rng := bankaware.NewRNG(3, 23)

	const sharedBase = 1 << 30
	streams := make([]bankaware.Stream, 8)
	streams[0] = &pingPong{base: sharedBase, lines: 128, write: true}  // producer
	streams[1] = &pingPong{base: sharedBase, lines: 128, write: false} // consumer
	for c := 2; c < 8; c++ {
		spec, err := bankaware.SpecByName("perlbmk")
		if err != nil {
			log.Fatal(err)
		}
		g, err := bankaware.NewGenerator(spec, rng.Split(uint64(c)), bankaware.GeneratorConfig{
			BlocksPerWay: cfg.BankSets,
			Base:         1 << (42 + uint(c)),
		})
		if err != nil {
			log.Fatal(err)
		}
		streams[c] = g
	}

	sys, err := bankaware.NewSystemWithStreams(cfg, bankaware.EqualPolicy{}, streams)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(500_000); err != nil {
		log.Fatal(err)
	}

	r := sys.Result([]string{"producer", "consumer", "perlbmk", "perlbmk", "perlbmk", "perlbmk", "perlbmk", "perlbmk"})
	fmt.Println("producer/consumer over a 128-line shared buffer (cores 0,1):")
	fmt.Print(r.String())

	ds := sys.DirectoryStats()
	fmt.Println("\nMOESI directory activity:")
	fmt.Printf("  read misses      %d\n", ds.ReadMisses)
	fmt.Printf("  write misses     %d\n", ds.WriteMisses)
	fmt.Printf("  upgrades         %d\n", ds.Upgrades)
	fmt.Printf("  invalidations    %d\n", ds.Invalidations)
	fmt.Printf("  cache-to-cache   %d\n", ds.CacheTransfers)
	fmt.Printf("  dirty writebacks %d\n", ds.Writebacks)

	// Show a shared line's state from both cores' perspective.
	addr := trace.Addr(sharedBase)
	fmt.Printf("\nline %#x state: producer=%v consumer=%v\n",
		uint64(addr), sys.DirectoryStateOf(addr, 0), sys.DirectoryStateOf(addr, 1))
	if ds.Invalidations == 0 || ds.CacheTransfers == 0 {
		log.Fatal("expected coherence traffic between the pair")
	}
}
