// Consolidation: the paper's motivating scenario — several small servers
// consolidated onto one 8-core CMP. Latency-sensitive services (small
// working sets) share the chip with batch analytics (streaming memory
// hogs). The example runs the mix under all three policies on the scaled
// model machine and shows how partitioning protects the services.
package main

import (
	"fmt"
	"log"

	"bankaware"
	"bankaware/internal/experiments"
)

func main() {
	// Four latency-sensitive services, two mid-size app servers, two
	// batch analytics jobs (streaming).
	mix := []string{
		"eon",    // auth service: tiny working set
		"gzip",   // edge cache: small
		"crafty", // game logic: small
		"galgel", // pricing kernel: small
		"mesa",   // rendering tier: mid
		"ammp",   // recommendation model: mid
		"art",    // analytics scan A: streaming
		"mcf",    // analytics scan B: pointer-chasing giant
	}

	specs := make([]bankaware.Spec, len(mix))
	for i, n := range mix {
		s, err := bankaware.SpecByName(n)
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = s
	}

	cfg := experiments.ScaleModel.Config()
	const instr = 2_000_000

	run := func(policyName string) bankaware.Result {
		p, err := bankaware.PolicyByName(policyName)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := bankaware.NewSystem(cfg, p, specs)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(instr / 2); err != nil { // warm-up
			log.Fatal(err)
		}
		sys.ResetStats()
		if err := sys.Run(instr); err != nil {
			log.Fatal(err)
		}
		return sys.Result(mix)
	}

	none := run("none")
	equal := run("equal")
	bank := run("bankaware")

	fmt.Println("consolidated-server mix: per-service L2 miss ratio and CPI by policy")
	fmt.Printf("%-10s | %-8s %-8s | %-8s %-8s | %-8s %-8s\n",
		"", "shared", "", "equal", "", "bank-aware", "")
	fmt.Printf("%-10s | %-8s %-8s | %-8s %-8s | %-8s %-8s\n",
		"service", "missrat", "cpi", "missrat", "cpi", "missrat", "cpi")
	for c, name := range mix {
		mr := func(r bankaware.Result) float64 {
			if r.Cores[c].L2Accesses == 0 {
				return 0
			}
			return float64(r.Cores[c].L2Misses) / float64(r.Cores[c].L2Accesses)
		}
		fmt.Printf("%-10s | %-8.3f %-8.2f | %-8.3f %-8.2f | %-8.3f %-8.2f\n",
			name, mr(none), none.Cores[c].CPI, mr(equal), equal.Cores[c].CPI,
			mr(bank), bank.Cores[c].CPI)
	}
	relE, cpiE := equal.PerCoreRelative(none)
	relB, cpiB := bank.PerCoreRelative(none)
	fmt.Printf("\nvs shared cache (GM per service): equal misses %.2f cpi %.2f | bank-aware misses %.2f cpi %.2f\n",
		relE, cpiE, relB, cpiB)
	fmt.Println("\nbank-aware final allocation:")
	// Re-run briefly to show the allocation (results above used fresh systems).
	p, _ := bankaware.PolicyByName("bankaware")
	sys, err := bankaware.NewSystem(cfg, p, specs)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(instr); err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Allocation().String())
}
