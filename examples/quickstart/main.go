// Quickstart: profile two workloads' cache behaviour with the MSA monitor,
// hand their miss curves to the bank-aware allocator, and print who gets
// which banks — the library's core loop in ~60 lines.
package main

import (
	"fmt"
	"log"

	"bankaware"
)

func main() {
	// 1. Pick workloads from the SPEC CPU2000-like catalog: a cache-hungry
	//    one and a tiny one, plus six moderate colleagues.
	names := []string{"facerec", "eon", "gzip", "crafty", "gap", "mesa", "galgel", "equake"}

	// 2. Profile each one standalone with the paper's low-overhead MSA
	//    monitor (12-bit partial tags, 1-in-32 set sampling).
	curves := make([]bankaware.MissCurve, len(names))
	for i, name := range names {
		spec, err := bankaware.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := bankaware.NewProfiler(bankaware.BaselineHardwareProfiler())
		if err != nil {
			log.Fatal(err)
		}
		gen, err := bankaware.NewGenerator(spec, bankaware.NewRNG(uint64(i), 7), bankaware.GeneratorConfig{})
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < 400_000; k++ {
			prof.Access(gen.Next().Access.Addr)
		}
		curves[i] = prof.MissCurve()
	}

	// 3. Run the bank-aware allocation algorithm (Fig. 6) on the curves.
	alloc, err := bankaware.BankAware(curves, bankaware.DefaultBankAware())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the physical partition: per-core ways and banks.
	fmt.Println("bank-aware allocation of the 16-bank, 16 MB DNUCA L2:")
	for c, name := range names {
		fmt.Printf("  core %d %-8s -> %3d ways across banks %v\n",
			c, name, alloc.Ways[c], alloc.BanksOf(c))
	}
	fmt.Println("\nfull map (L = Local bank, C = Center bank):")
	fmt.Print(alloc.String())
}
