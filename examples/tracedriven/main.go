// Tracedriven: the trace-capture workflow. Record two workloads' access
// streams to compressed trace files, inspect them, then replay the traces
// through the MSA profiler — Mattson's original trace-driven methodology —
// and feed the resulting curves to the allocator. Replays are exact, so a
// captured trace is a reproducible experiment artifact.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bankaware"
)

func main() {
	dir, err := os.MkdirTemp("", "bankaware-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	names := []string{"sixtrack", "facerec"}
	const accesses = 300_000
	const bpw = 128 // 1/16-scale way-equivalent

	// 1. Record.
	paths := map[string]string{}
	for i, name := range names {
		spec, err := bankaware.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		g, err := bankaware.NewGenerator(spec, bankaware.NewRNG(uint64(i), 99),
			bankaware.GeneratorConfig{BlocksPerWay: bpw})
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, name+".trace.gz")
		if err := bankaware.WriteTraceFile(path, g, accesses); err != nil {
			log.Fatal(err)
		}
		info, _ := os.Stat(path)
		fmt.Printf("recorded %s: %d events, %d KiB on disk (%.2f bits/event)\n",
			name, accesses, info.Size()/1024, float64(info.Size()*8)/accesses)
		paths[name] = path
	}

	// 2. Replay through profilers.
	curves := make([]bankaware.MissCurve, 8)
	for i := range curves {
		name := names[i%len(names)]
		tr, err := bankaware.ReadTraceFile(paths[name])
		if err != nil {
			log.Fatal(err)
		}
		prof, err := bankaware.NewProfiler(bankaware.ProfilerConfig{Sets: bpw, MaxWays: 72})
		if err != nil {
			log.Fatal(err)
		}
		s := tr.Stream()
		for k := 0; k < tr.Len(); k++ {
			prof.Access(s.Next().Access.Addr)
		}
		curves[i] = prof.MissCurve()
	}

	// 3. Allocate from the replayed profiles.
	alloc, err := bankaware.BankAware(curves, bankaware.DefaultBankAware())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbank-aware allocation from replayed traces (alternating sixtrack/facerec):")
	for c := 0; c < 8; c++ {
		fmt.Printf("  core %d %-8s -> %3d ways\n", c, names[c%len(names)], alloc.Ways[c])
	}
}
