// Phases: why *dynamic* partitioning matters. Core 0 runs a program that
// alternates between a tiny working set and a large one; the bank-aware
// epoch controller re-reads the MSA profiles every epoch and moves banks to
// follow the phase. The example prints core 0's allocation over time.
package main

import (
	"fmt"
	"log"

	"bankaware"
	"bankaware/internal/experiments"
)

func main() {
	cfg := experiments.ScaleModel.Config()
	cfg.EpochCycles = 300_000 // react within each phase

	// Core 0: phase A touches ~2 ways, phase B ~40 ways.
	small := bankaware.Spec{Name: "phaseA", HitMass: []float64{1, 1}, ColdFrac: 0.02, MemPerKI: 100}
	big := bankaware.Spec{Name: "phaseB", HitMass: make([]float64, 40), ColdFrac: 0.05, MemPerKI: 100}
	for i := range big.HitMass {
		big.HitMass[i] = 1
	}
	rng := bankaware.NewRNG(11, 17)
	phased, err := bankaware.NewPhasedGenerator([]bankaware.Phase{
		{Spec: small, Accesses: 40_000},
		{Spec: big, Accesses: 40_000},
	}, rng, bankaware.GeneratorConfig{BlocksPerWay: cfg.BankSets, Base: 1 << 40})
	if err != nil {
		log.Fatal(err)
	}

	streams := make([]bankaware.Stream, 8)
	streams[0] = phased
	for c := 1; c < 8; c++ {
		spec, err := bankaware.SpecByName("crafty")
		if err != nil {
			log.Fatal(err)
		}
		g, err := bankaware.NewGenerator(spec, rng.Split(uint64(c)), bankaware.GeneratorConfig{
			BlocksPerWay: cfg.BankSets,
			Base:         1 << (42 + uint(c)), // disjoint per-core regions
		})
		if err != nil {
			log.Fatal(err)
		}
		streams[c] = g
	}

	sys, err := bankaware.NewSystemWithStreams(cfg, bankaware.NewBankAwarePolicy(), streams)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("core 0 alternates a 2-way and a 40-way working set;")
	fmt.Println("bank-aware allocation of core 0 over time:")
	fmt.Printf("%-12s %-8s %-10s %-8s\n", "instructions", "epochs", "phase", "ways(core0)")
	for step := 1; step <= 10; step++ {
		if err := sys.Run(uint64(step) * 150_000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %-8d %-10d %-8d\n",
			step*150_000, sys.Epochs(), phased.Current(), sys.Allocation().Ways[0])
	}
}
