package bankaware_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bankaware"
)

var updateGolden = flag.Bool("update", false, "rewrite golden run-report files")

// goldenReport runs the pinned fixed-seed campaign: Table III set 1 on the
// model machine with a shortened epoch (so the dynamic policy repartitions
// several times within the budget), observed, and serialised through the
// Runner's report writer.
func goldenReport(t *testing.T, workers int, opts ...bankaware.RunnerOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := bankaware.NewRunner(append([]bankaware.RunnerOption{
		bankaware.WithWorkers(workers),
		bankaware.WithReportWriter(&buf),
	}, opts...)...)
	cfg := bankaware.ScaleModel.Config()
	cfg.EpochCycles = 200_000
	if _, err := r.RunSet(cfg, 1, bankaware.TableIIISets[0][:], 300_000); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenRunReport pins the run-report JSON end to end: schema, field
// layout, and every value of a fixed-seed campaign. A deliberate schema or
// behaviour change regenerates the file with `go test -run Golden -update`;
// anything else failing here is an unintended drift in either the simulator
// or the report encoding.
func TestGoldenRunReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full set evaluation in -short mode")
	}
	got := goldenReport(t, 1)

	path := filepath.Join("testdata", "golden-set1-report.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		a, errA := bankaware.ReadReport(bytes.NewReader(want))
		b, errB := bankaware.ReadReport(bytes.NewReader(got))
		if errA == nil && errB == nil {
			for _, d := range bankaware.DiffReports(a, b) {
				t.Log(d)
			}
		}
		t.Fatal("run report drifted from golden file (see diff lines above; -update if intended)")
	}

	// The pinned report must demonstrate the acceptance shape: per-epoch
	// per-core series and at least one dynamic partition change.
	rep, err := bankaware.ReadReport(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != bankaware.ReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, bankaware.ReportSchema)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("expected 3 policy runs, got %d", len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if len(run.EpochSeries) < 2 {
			t.Fatalf("run %s: %d epoch samples, want several", run.Name, len(run.EpochSeries))
		}
		for _, s := range run.EpochSeries {
			if len(s.Cores) != 8 {
				t.Fatalf("run %s epoch %d: %d core samples", run.Name, s.Epoch, len(s.Cores))
			}
		}
		if run.Policy == "Bank-aware" {
			dynamic := 0
			for _, ev := range run.PartitionEvents {
				if ev.Epoch > 0 {
					dynamic++
				}
			}
			if dynamic == 0 {
				t.Fatal("bank-aware run recorded no dynamic partition changes")
			}
		}
	}
}

// TestGoldenRunReportWorkerInvariant: the exact bytes of the report must
// not depend on the worker count.
func TestGoldenRunReportWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full set evaluation in -short mode")
	}
	serial := goldenReport(t, 1)
	parallel := goldenReport(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("report bytes differ between 1 and 8 workers")
	}
}

// TestGoldenRunReportSimWorkerInvariant: the exact bytes of the report must
// not depend on the intra-simulation lane count either — the pipelined
// executor (WithSimWorkers >= 2) must reproduce the sequential loop's
// report bit for bit, pinned against the committed golden file.
func TestGoldenRunReportSimWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full set evaluation in -short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden-set1-report.json"))
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	for _, lanes := range []int{1, 2, 8} {
		got := goldenReport(t, 1, bankaware.WithSimWorkers(lanes))
		if !bytes.Equal(got, want) {
			t.Fatalf("simWorkers=%d: report bytes differ from the golden file", lanes)
		}
	}
}
