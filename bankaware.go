// Package bankaware is a from-scratch reproduction of "Bank-aware Dynamic
// Cache Partitioning for Multicore Architectures" (Kaseridis, Stuecheli and
// John, ICPP 2009): dynamic last-level-cache partitioning for an 8-core CMP
// with a 16-bank DNUCA L2, driven by Mattson stack-distance profilers and a
// marginal-utility allocator that respects physical banking restrictions.
//
// This root package is the public facade: it re-exports the library's
// stable surface so applications depend on one import path.
//
//   - Workloads: Spec, Catalog, Generator — the synthetic SPEC CPU2000-like
//     workload substrate (stack-distance-driven access streams).
//   - Profiling: Profiler — the MSA monitor with partial tags and set
//     sampling, plus the Table II overhead model.
//   - Partitioning: MissCurve, BankAware, Unrestricted and the Policy
//     implementations — the paper's contribution.
//   - Simulation: System, Config, Result — the full-system discrete-event
//     simulator (cores, L1s, DNUCA L2, MOESI directory, interconnect,
//     DRAM).
//   - Evaluation: MonteCarlo (Fig. 7) and the experiments package's
//     Table III set runners (Figs. 8 and 9).
//   - Execution: Runner and the RunMonteCarloContext /
//     RunExperimentsContext entry points (runner.go) — the parallel,
//     context-aware engine every campaign fans out through.
//
// See examples/ for runnable scenarios and DESIGN.md / EXPERIMENTS.md for
// the experiment index and measured results.
package bankaware

import (
	"bankaware/internal/cache"
	"bankaware/internal/core"
	"bankaware/internal/faults"
	"bankaware/internal/metrics"
	"bankaware/internal/montecarlo"
	"bankaware/internal/msa"
	"bankaware/internal/nuca"
	"bankaware/internal/sim"
	"bankaware/internal/stats"
	"bankaware/internal/trace"
)

// RNG is the deterministic random source all workload generation uses.
type RNG = stats.RNG

// NewRNG seeds a deterministic random source.
var NewRNG = stats.NewRNG

// Workload substrate.
type (
	// Spec declares a synthetic workload's reuse behaviour.
	Spec = trace.Spec
	// Access is one memory reference.
	Access = trace.Access
	// Event is a gap of non-memory instructions plus one access.
	Event = trace.Event
	// Stream is any source of memory events.
	Stream = trace.Stream
	// Generator realises a Spec as a deterministic access stream.
	Generator = trace.Generator
	// GeneratorConfig carries generator environment parameters.
	GeneratorConfig = trace.GeneratorConfig
	// Phase is one segment of a phased workload.
	Phase = trace.Phase
	// PhasedGenerator cycles through phases.
	PhasedGenerator = trace.PhasedGenerator
)

// Profiling.
type (
	// Profiler is the MSA stack-distance monitor.
	Profiler = msa.Profiler
	// ProfilerConfig parametrises a profiler.
	ProfilerConfig = msa.Config
)

// Partitioning.
type (
	// MissCurve is a projected miss-count curve over way allocations.
	MissCurve = core.MissCurve
	// Allocation is a physical partition of the 16-bank L2.
	Allocation = core.Allocation
	// Policy computes allocations from miss curves.
	Policy = core.Policy
	// BankAwareConfig parametrises the Fig. 6 allocator.
	BankAwareConfig = core.BankAwareConfig
	// UnrestrictedConfig parametrises the idealised UCP-style allocator.
	UnrestrictedConfig = core.UnrestrictedConfig
)

// Simulation.
type (
	// SimConfig is the full-system simulator configuration (Table I).
	SimConfig = sim.Config
	// System is one simulated CMP instance.
	System = sim.System
	// Result reports a run's per-core and system metrics.
	Result = sim.Result
)

// Monte Carlo (Fig. 7).
type (
	// MonteCarloConfig parametrises the Fig. 7 experiment.
	MonteCarloConfig = montecarlo.Config
	// MonteCarloResults holds the sorted trial ratios.
	MonteCarloResults = montecarlo.Results
)

// Observability: the metrics registry, the epoch-aligned observation
// stream, and the versioned machine-readable run report every campaign
// can emit (schema ReportSchema). See Runner's WithMetrics and
// WithReportWriter options and System.EnableMetrics.
type (
	// MetricsRegistry is a namespace of named counters/gauges/histograms.
	MetricsRegistry = metrics.Registry
	// MetricsRecorder bundles a registry with a simulation's epoch samples
	// and partition events.
	MetricsRecorder = metrics.Recorder
	// Report is the versioned machine-readable campaign report.
	Report = metrics.Report
	// RunReport is one simulation's totals, epoch series and events.
	RunReport = metrics.RunReport
	// EpochSample is one epoch window of the observed time series.
	EpochSample = metrics.EpochSample
	// CoreSample is one core's activity within an epoch window.
	CoreSample = metrics.CoreSample
	// PartitionEvent records one core's allocation changing at an epoch.
	PartitionEvent = metrics.PartitionEvent
)

// ReportSchema is the run-report JSON layout version.
const ReportSchema = metrics.Schema

// Fault injection: deterministic, seed-driven fault plans degrade a run at
// scheduled epochs — L2 banks fail (contents lost, capacity re-partitioned
// around them) or slow down, miss-curve profiling turns noisy or stale, and
// DRAM latency spikes. See Runner's WithFaultPlan option, SimConfig.Faults,
// and DESIGN.md's fault-model section.
type (
	// FaultPlan is a deterministic schedule of fault events.
	FaultPlan = faults.Plan
	// FaultEvent is one scheduled fault.
	FaultEvent = faults.Event
	// FaultKind distinguishes fault event types.
	FaultKind = faults.Kind
	// FaultGenSpec parametrises random plan generation.
	FaultGenSpec = faults.GenSpec
	// BankSet is a bitmask over the 16 L2 banks.
	BankSet = nuca.BankSet
)

// Fault kinds.
const (
	// FaultBankFail marks an L2 bank failed (contents lost, capacity gone).
	FaultBankFail = faults.BankFail
	// FaultBankSlow adds access latency to one bank.
	FaultBankSlow = faults.BankSlow
	// FaultCurveNoise perturbs the miss curves the policies see.
	FaultCurveNoise = faults.CurveNoise
	// FaultCurveStale freezes profiler curves at the previous epoch's view.
	FaultCurveStale = faults.CurveStale
	// FaultDRAMSpike adds latency to every DRAM access.
	FaultDRAMSpike = faults.DRAMSpike
)

// Fault-plan entry points.
var (
	// LoadFaultPlan reads and validates a JSON fault plan from a file.
	LoadFaultPlan = faults.Load
	// ParseFaultPlan reads and validates a JSON fault plan from bytes.
	ParseFaultPlan = faults.Parse
	// GenerateFaultPlan draws a random plan from a spec and seeded RNG.
	GenerateFaultPlan = faults.Generate
)

// Observability entry points.
var (
	// NewMetricsRegistry returns an empty metrics registry.
	NewMetricsRegistry = metrics.NewRegistry
	// NewMetricsRecorder returns a recorder with a fresh registry.
	NewMetricsRecorder = metrics.NewRecorder
	// ReadReport parses a report written by Report.WriteJSON and checks
	// its schema version.
	ReadReport = metrics.ReadReport
	// DiffReports compares two reports' summaries and run totals,
	// returning one line per difference.
	DiffReports = metrics.Diff
)

// Workload catalogue.
var (
	// Catalog returns the 26 SPEC CPU2000-like workloads.
	Catalog = trace.Catalog
	// SpecByName looks a workload up by name.
	SpecByName = trace.SpecByName
	// CatalogNames lists the catalogue.
	CatalogNames = trace.CatalogNames
	// NewGenerator builds a deterministic access stream for a Spec.
	NewGenerator = trace.NewGenerator
	// NewPhasedGenerator builds a phase-cycling stream.
	NewPhasedGenerator = trace.NewPhasedGenerator
)

// Profiler constructors.
var (
	// NewProfiler builds an MSA profiler.
	NewProfiler = msa.NewProfiler
	// BaselineHardwareProfiler is the paper's low-overhead configuration
	// (12-bit partial tags, 1-in-32 set sampling, 72-way cap).
	BaselineHardwareProfiler = msa.BaselineHardware
	// BaselineExactProfiler is the full-tag, all-sets configuration.
	BaselineExactProfiler = msa.BaselineExact
)

// Partitioning entry points.
var (
	// BankAware runs the paper's Fig. 6 allocation algorithm.
	BankAware = core.BankAware
	// Unrestricted runs the idealised lookahead allocator.
	Unrestricted = core.Unrestricted
	// NewBankAwarePolicy returns the dynamic bank-aware policy.
	NewBankAwarePolicy = core.NewBankAwarePolicy
	// PolicyByName resolves none|equal|bankaware.
	PolicyByName = core.PolicyByName
	// DefaultBankAware returns the paper's allocator parameters.
	DefaultBankAware = core.DefaultBankAware
	// DefaultUnrestricted returns the baseline idealised parameters.
	DefaultUnrestricted = core.DefaultUnrestricted
)

// Static policies.
type (
	// NoPartitionPolicy is the shared-LRU baseline.
	NoPartitionPolicy = core.NoPartitionPolicy
	// EqualPolicy is the static even (private) split.
	EqualPolicy = core.EqualPolicy
	// BankAwarePolicy is the paper's dynamic policy.
	BankAwarePolicy = core.BankAwarePolicy
)

// Simulation entry points.
var (
	// NewSystem builds a full-system simulation of 8 workload specs.
	NewSystem = sim.New
	// NewSystemWithStreams builds a simulation over custom streams.
	NewSystemWithStreams = sim.NewWithStreams
	// DefaultSimConfig is the paper's Table I machine.
	DefaultSimConfig = sim.DefaultConfig
)

// MonteCarlo entry points.
var (
	// DefaultMonteCarloConfig reproduces the paper's 1000-trial setup.
	DefaultMonteCarloConfig = montecarlo.DefaultConfig
)

// RunMonteCarlo executes the Fig. 7 experiment with background context.
//
// Deprecated: use RunMonteCarloContext or Runner.RunMonteCarlo, which add
// cancellation, an explicit worker bound and progress reporting. This shim
// runs on all available cores and produces identical results.
func RunMonteCarlo(cfg MonteCarloConfig) (*MonteCarloResults, error) {
	return montecarlo.Run(cfg)
}

// Extensions beyond the paper.
type (
	// BandwidthAwarePolicy allocates by miss *cost* using DRAM-queueing
	// feedback (the authors' follow-up direction).
	BandwidthAwarePolicy = core.BandwidthAwarePolicy
	// FeedbackPolicy is the interface the epoch controller feeds
	// memory-subsystem pressure through.
	FeedbackPolicy = core.FeedbackPolicy
	// ReplacementPolicy selects a cache bank's victim policy.
	ReplacementPolicy = cache.ReplacementPolicy
	// Trace is a recorded access stream.
	Trace = trace.Trace
	// TraceRecorder serialises access streams.
	TraceRecorder = trace.Recorder
)

// Replacement policies.
const (
	// ReplacementLRU is true least-recently-used (the paper's model).
	ReplacementLRU = cache.LRU
	// ReplacementTreePLRU is binary-tree pseudo-LRU (realistic hardware).
	ReplacementTreePLRU = cache.TreePLRU
)

// Extension constructors and trace I/O.
var (
	// NewBandwidthAwarePolicy returns the feedback-driven extension.
	NewBandwidthAwarePolicy = core.NewBandwidthAwarePolicy
	// WriteTraceFile records a stream to a gzip trace file.
	WriteTraceFile = trace.WriteTraceFile
	// ReadTraceFile loads a gzip trace file.
	ReadTraceFile = trace.ReadTraceFile
	// RecordStream captures n events of a stream to a writer.
	RecordStream = trace.RecordStream
	// ReadTrace parses a trace from a reader.
	ReadTrace = trace.ReadTrace
	// NewTraceRecorder starts a trace on a writer.
	NewTraceRecorder = trace.NewRecorder
)
