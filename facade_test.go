package bankaware_test

import (
	"testing"

	"bankaware"
)

// The facade is the supported public surface; these tests pin that its
// aliases and constructors actually compose into the library's core loop.

func TestFacadeProfileAllocateLoop(t *testing.T) {
	curves := make([]bankaware.MissCurve, 8)
	for i := 0; i < 8; i++ {
		spec, err := bankaware.SpecByName(bankaware.CatalogNames()[i])
		if err != nil {
			t.Fatal(err)
		}
		prof, err := bankaware.NewProfiler(bankaware.ProfilerConfig{Sets: 64, MaxWays: 72})
		if err != nil {
			t.Fatal(err)
		}
		gen, err := bankaware.NewGenerator(spec, bankaware.NewRNG(uint64(i), 3),
			bankaware.GeneratorConfig{BlocksPerWay: 64})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20_000; k++ {
			prof.Access(gen.Next().Access.Addr)
		}
		curves[i] = prof.MissCurve()
	}
	alloc, err := bankaware.BankAware(curves, bankaware.DefaultBankAware())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, w := range alloc.Ways {
		sum += w
	}
	if sum != 128 {
		t.Fatalf("facade allocation sums to %d ways", sum)
	}
}

func TestFacadePolicies(t *testing.T) {
	for _, name := range []string{"none", "equal", "bankaware", "bandwidth", "unrestricted"} {
		p, err := bankaware.PolicyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s has no display name", name)
		}
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(bankaware.Catalog()) != 26 {
		t.Fatal("catalog size via facade wrong")
	}
	if _, err := bankaware.SpecByName("mcf"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMonteCarlo(t *testing.T) {
	cfg := bankaware.DefaultMonteCarloConfig()
	cfg.Trials = 20
	res, err := bankaware.RunMonteCarlo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 20 {
		t.Fatalf("%d trials", len(res.Trials))
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := bankaware.DefaultSimConfig()
	cfg.BankSets = 128
	cfg.L1.Sets = 32
	cfg.Profiler.Sets = 128
	cfg.EpochCycles = 500_000
	specs := make([]bankaware.Spec, 8)
	for i := range specs {
		s, err := bankaware.SpecByName("eon")
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = s
	}
	sys, err := bankaware.NewSystem(cfg, bankaware.EqualPolicy{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50_000); err != nil {
		t.Fatal(err)
	}
	r := sys.Result(nil)
	if r.TotalL2Accesses == 0 {
		t.Fatal("no traffic through the facade-configured system")
	}
}

func TestFacadeReplacementConstants(t *testing.T) {
	if bankaware.ReplacementLRU == bankaware.ReplacementTreePLRU {
		t.Fatal("replacement constants collide")
	}
}
